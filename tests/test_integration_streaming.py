"""End-to-end integration tests over the synthetic datasets.

These run the full pipeline — dataset generator, query extraction,
snapshot generator, engine, baselines — at a small scale and check
cross-system agreement and incremental-vs-recompute consistency.
"""

import pytest

from repro.baselines import CECIMatcher
from repro.core.engine import EngineConfig, MnemonicEngine
from repro.core.parallel import ParallelConfig
from repro.datasets import (
    LANLConfig,
    LSBenchConfig,
    NetFlowConfig,
    generate_lanl_stream,
    generate_lsbench_stream,
    generate_netflow_stream,
    graph_from_events,
)
from repro.query.generator import QueryGenerator
from repro.streams.config import StreamConfig, StreamType
from repro.streams.events import EventKind


class TestNetFlowPipeline:
    @pytest.fixture(scope="class")
    def setup(self):
        stream = generate_netflow_stream(NetFlowConfig(num_events=1200, num_hosts=100, seed=41))
        graph = graph_from_events(stream[:900])
        query = QueryGenerator(graph, seed=11).tree_query(3)
        return stream, query

    def test_incremental_equals_recompute(self, setup):
        stream, query = setup
        config = EngineConfig(stream=StreamConfig(batch_size=100))
        engine = MnemonicEngine(query, config=config)
        engine.load_initial(stream[:900])
        baseline = CECIMatcher(query).match_node_maps(graph_from_events(stream[:900]))
        result = engine.run(stream[900:])
        incremental = baseline | {e.node_map for e in result.all_positive()}
        recomputed = CECIMatcher(query).match_node_maps(graph_from_events(stream))
        assert incremental == recomputed

    def test_batch_size_does_not_change_answers(self, setup):
        stream, query = setup
        answers = []
        for batch_size in (1, 7, 100):
            engine = MnemonicEngine(query, config=EngineConfig(stream=StreamConfig(batch_size=batch_size)))
            engine.load_initial(stream[:900])
            result = engine.run(stream[900:])
            answers.append(frozenset(e.identity() for e in result.all_positive()))
        assert answers[0] == answers[1] == answers[2]

    def test_parallel_backends_equal_serial(self, setup):
        stream, query = setup
        outputs = []
        for parallel in (ParallelConfig(), ParallelConfig(backend="thread", num_workers=4),
                         ParallelConfig(backend="process", num_workers=2, chunk_size=16)):
            engine = MnemonicEngine(query, config=EngineConfig(
                stream=StreamConfig(batch_size=64), parallel=parallel))
            engine.load_initial(stream[:900])
            result = engine.run(stream[900:])
            outputs.append(frozenset(e.identity() for e in result.all_positive()))
        assert outputs[0] == outputs[1] == outputs[2]


class TestLSBenchPipeline:
    def test_insert_delete_stream_consistency(self):
        stream = generate_lsbench_stream(LSBenchConfig(num_events=900, num_users=90, seed=42))
        graph = graph_from_events(stream[:600])
        query = QueryGenerator(graph, seed=13).tree_query(3)
        engine = MnemonicEngine(query, config=EngineConfig(
            stream=StreamConfig(stream_type=StreamType.INSERT_DELETE, batch_size=50)))
        engine.load_initial([e for e in stream[:600] if e.kind is EventKind.INSERT])
        # The prefix contains only insertions, so loading it directly is equivalent.
        result = engine.run(stream[600:])
        baseline = CECIMatcher(query).match_node_maps(graph_from_events(stream[:600]))
        final = CECIMatcher(query).match_node_maps(graph_from_events(stream))
        incremental = (baseline | {e.node_map for e in result.all_positive()}) - (
            {e.node_map for e in result.all_negative()}
            - {e.node_map for e in result.all_positive()}
        )
        # Node-map bookkeeping: remove maps whose last witness disappeared.
        # (Edge-level identities are exact; node maps can be recreated, so we
        # only assert the two directions of containment that must hold.)
        assert final <= baseline | {e.node_map for e in result.all_positive()}
        assert incremental >= final

    def test_negative_embeddings_reported(self):
        stream = generate_lsbench_stream(LSBenchConfig(num_events=1200, num_users=60, seed=43,
                                                       prefix_fraction=0.6, delete_fraction=0.5))
        graph = graph_from_events(stream[:700])
        query = QueryGenerator(graph, seed=3).tree_query(3)
        engine = MnemonicEngine(query, config=EngineConfig(
            stream=StreamConfig(stream_type=StreamType.INSERT_DELETE, batch_size=64)))
        result = engine.run(stream)
        assert result.total_positive > 0
        assert result.total_negative >= 0  # deletions may or may not hit matches


class TestLANLSlidingWindow:
    def test_window_bounds_live_graph(self):
        stream = generate_lanl_stream(LANLConfig(num_events=1500, num_entities=120, seed=44))
        graph = graph_from_events(stream[:1000])
        query = QueryGenerator(graph, seed=17).tree_query(3)
        window, stride = 300.0, 150.0
        engine = MnemonicEngine(query, config=EngineConfig(
            stream=StreamConfig(stream_type=StreamType.SLIDING_WINDOW, window=window,
                                stride=stride, batch_size=10_000)))
        result = engine.run(stream)
        assert len(result.snapshots) > 3
        # After the run, every live edge must be newer than (last watermark - window).
        last_watermark = max(e.timestamp for e in stream)
        for record in engine.graph.edges():
            assert record.timestamp > last_watermark - window - stride

    def test_windowed_matches_equal_recompute_per_snapshot(self):
        stream = generate_lanl_stream(LANLConfig(num_events=600, num_entities=60, seed=45))
        graph = graph_from_events(stream[:400])
        query = QueryGenerator(graph, seed=19).tree_query(3)
        window, stride = 200.0, 100.0
        engine = MnemonicEngine(query, config=EngineConfig(
            stream=StreamConfig(stream_type=StreamType.SLIDING_WINDOW, window=window,
                                stride=stride, batch_size=10_000)))
        generator = engine.initialize_stream(stream)
        net: set = set()
        for snapshot in generator:
            result = engine.process_snapshot(snapshot)
            net |= {e.node_map for e in result.positive_embeddings}
            net -= {e.node_map for e in result.negative_embeddings
                    if e.node_map not in {p.node_map for p in result.positive_embeddings}}
            # Recompute from scratch over the engine's current live graph.
            recomputed = CECIMatcher(query).match_node_maps(engine.graph)
            live_maps = {e.node_map for e in CECIMatcher(query).match(engine.graph)}
            assert recomputed == live_maps
            # The engine's DEBI-backed view must agree with the recomputation.
            from repro.core.enumeration import decompose_batch
            from repro.core.parallel import run_enumeration

            ctx = engine._make_context(
                batch_edge_ids={r.edge_id for r in engine.graph.edges()}, positive=True)
            units = decompose_batch(ctx, [r.edge_id for r in engine.graph.edges()])
            full = run_enumeration(ctx, units, ParallelConfig())
            assert {e.node_map for e in full.embeddings} == recomputed


class TestExternalMemoryIntegration:
    def test_spill_keeps_results_identical(self):
        stream = generate_netflow_stream(NetFlowConfig(num_events=800, num_hosts=80, seed=46))
        graph = graph_from_events(stream[:600])
        query = QueryGenerator(graph, seed=23).tree_query(3)

        def run(in_memory_window):
            engine = MnemonicEngine(query, config=EngineConfig(
                stream=StreamConfig(batch_size=64, in_memory_window=in_memory_window)))
            engine.load_initial(stream[:600])
            result = engine.run(stream[600:])
            return engine, frozenset(e.identity() for e in result.all_positive())

        engine_mem, with_everything = run(None)
        engine_disk, with_spill = run(100)
        assert with_everything == with_spill
        assert engine_disk.external_store is not None
        assert engine_disk.external_store.spilled_count > 0
        report = engine_disk.memory_report()
        assert report["spilled_edges"] > 0
