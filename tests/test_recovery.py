"""Crash-recovery tests for the durable engine state (journal + checkpoints).

The harness simulates a crash by abandoning an engine mid-stream:
``engine.close()`` is crash-safe by construction — it flushes in-flight
pipeline phases (their results are simply never delivered) and closes
file descriptors, but never seals an epoch or writes a checkpoint.  A
recovered engine must therefore reconstruct exactly the state as of the
last *delivered* batch, and refeeding the remainder of the stream must
reproduce the uninterrupted run bit-for-bit: the union of pre-crash
delivered results and post-recovery results equals the straight-through
results, as identity multisets over (node_map, edge_map, sign).
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.engine import EngineConfig, MnemonicEngine
from repro.core.registry import MultiQueryEngine
from repro.core.service import MnemonicService
from repro.query.query_graph import QueryGraph
from repro.storage.config import StorageConfig
from repro.streams.config import StreamConfig, StreamType
from repro.streams.events import EventKind, StreamEvent
from repro.streams.generator import SnapshotGenerator
from repro.streams.sources import ListSource
from repro.utils.rng import make_rng
from repro.utils.validation import ConfigurationError

BATCH = 4
NUM_VERTICES = 24
NUM_LABELS = 3


def vlabel(v: int) -> int:
    return v % NUM_LABELS + 1


def path_query() -> QueryGraph:
    return QueryGraph.from_edges([(0, 1), (1, 2)], node_labels={0: 1, 1: 2, 2: 3})


def edge_query() -> QueryGraph:
    return QueryGraph.from_edges([(0, 1)], node_labels={0: 2, 1: 3})


def make_stream(seed: int, length: int, delete_fraction: float = 0.3) -> list[StreamEvent]:
    """A deterministic insert/delete stream with self-consistent labels."""
    rng = make_rng(seed)
    events: list[StreamEvent] = []
    live: list[StreamEvent] = []
    for _ in range(length):
        if live and rng.random() < delete_fraction:
            victim = live.pop(int(rng.integers(len(live))))
            events.append(StreamEvent.delete(victim.src, victim.dst, victim.label))
        else:
            src = int(rng.integers(NUM_VERTICES))
            dst = int(rng.integers(NUM_VERTICES))
            event = StreamEvent.insert(src, dst, 0, src_label=vlabel(src), dst_label=vlabel(dst))
            events.append(event)
            live.append(event)
    return events


def snapshots_for(events, batch_size: int = BATCH):
    """Pre-batched snapshots, so every run sees identical epoch boundaries."""
    config = StreamConfig(stream_type=StreamType.INSERT_DELETE, batch_size=batch_size)
    return list(SnapshotGenerator(ListSource(list(events)), config))


def make_config(directory=None, pipeline: str = "serial", hot_rows: int | None = 8) -> EngineConfig:
    storage = None
    if directory is not None:
        storage = StorageConfig(
            directory=directory, checkpoint_interval=3,
            debi_hot_rows=hot_rows, debi_segment_rows=4,
        )
    return EngineConfig(
        stream=StreamConfig(stream_type=StreamType.INSERT_DELETE, batch_size=BATCH),
        pipeline=pipeline,
        collect_embeddings=True,
        storage=storage,
    )


def identity_counts(results) -> tuple[Counter, Counter]:
    """Positive / negative embedding identity multisets over results."""
    pos: Counter = Counter()
    neg: Counter = Counter()
    for result in results:
        pos.update(e.identity() for e in result.positive_embeddings)
        neg.update(e.identity() for e in result.negative_embeddings)
    return pos, neg


def run_snapshots(engine, snapshots) -> list:
    return [engine.process_snapshot(s) for s in snapshots]


# ---------------------------------------------------------------------- single query, serial
def test_serial_crash_at_every_epoch_boundary(tmp_path):
    """Crash after every k delivered batches; recovery + refeed == straight run."""
    events = make_stream(seed=2201, length=120)
    snapshots = snapshots_for(events)
    with MnemonicEngine(path_query(), config=make_config()) as engine:
        straight = identity_counts(run_snapshots(engine, snapshots))
    assert sum(straight[0].values()) > 0 and sum(straight[1].values()) > 0

    for crash_at in range(len(snapshots) + 1):
        directory = tmp_path / f"crash{crash_at}"
        engine = MnemonicEngine(path_query(), config=make_config(directory))
        pre = run_snapshots(engine, snapshots[:crash_at])
        engine.close()  # crash: nothing sealed beyond the delivered batches

        recovered = MnemonicEngine.open(directory)
        info = recovered.recovery_info
        assert info["corruption"] is None
        last = info["last_sealed_number"]
        resume = 0 if last is None else last + 1
        assert resume == crash_at
        post = run_snapshots(recovered, snapshots[crash_at:])
        recovered.close()
        assert identity_counts(pre + post) == straight, f"crash at {crash_at}"


def test_crash_before_any_batch_with_initial_load(tmp_path):
    """load_initial is journaled: a crash right after it loses nothing."""
    events = make_stream(seed=2202, length=100)
    initial = [e for e in events[:40] if e.kind is EventKind.INSERT]
    snapshots = snapshots_for(events[40:])

    with MnemonicEngine(path_query(), config=make_config()) as engine:
        engine.load_initial(list(initial))
        straight = identity_counts(run_snapshots(engine, snapshots))

    directory = tmp_path / "state"
    engine = MnemonicEngine(path_query(), config=make_config(directory))
    engine.load_initial(list(initial))
    engine.close()

    recovered = MnemonicEngine.open(directory)
    assert recovered.recovery_info["last_sealed_number"] is None
    assert recovered.graph.num_edges == len(initial)
    got = identity_counts(run_snapshots(recovered, snapshots))
    recovered.close()
    assert got == straight


def test_recovered_graph_and_debi_match_survivor(tmp_path):
    """Recovered internal state is bit-identical to an engine that never crashed."""
    import numpy as np

    events = make_stream(seed=2203, length=140)
    snapshots = snapshots_for(events)
    crash_at = len(snapshots) // 2

    survivor_dir = tmp_path / "survivor"
    survivor = MnemonicEngine(path_query(), config=make_config(survivor_dir))
    run_snapshots(survivor, snapshots[:crash_at])

    crash_dir = tmp_path / "crash"
    engine = MnemonicEngine(path_query(), config=make_config(crash_dir))
    run_snapshots(engine, snapshots[:crash_at])
    engine.close()
    recovered = MnemonicEngine.open(crash_dir)

    assert recovered.graph.num_edges == survivor.graph.num_edges
    assert sorted(recovered.graph.vertices()) == sorted(survivor.graph.vertices())
    got = recovered.debi.export_buffers()
    want = survivor.debi.export_buffers()
    assert got["num_rows"] == want["num_rows"]
    np.testing.assert_array_equal(
        np.asarray(got["rows"])[: got["num_rows"]],
        np.asarray(want["rows"])[: want["num_rows"]],
    )
    np.testing.assert_array_equal(np.asarray(got["roots"]), np.asarray(want["roots"]))
    survivor.close()
    recovered.close()


# ---------------------------------------------------------------------- single query, pipelined
@pytest.mark.parametrize("delivered", [1, 3, 7])
def test_pipelined_crash_mid_stream(tmp_path, delivered):
    """Pipelined mode: applied-but-undelivered batches are not sealed.

    The pipeline runs mutations ahead of enumeration deliveries; a crash
    between the two must recover to the last *delivered* epoch, and the
    refeed re-applies the lost batches exactly once.
    """
    events = make_stream(seed=2204, length=120)
    snapshots = snapshots_for(events)
    with MnemonicEngine(path_query(), config=make_config()) as engine:
        straight = identity_counts(run_snapshots(engine, snapshots))

    directory = tmp_path / "state"
    engine = MnemonicEngine(path_query(), config=make_config(directory, pipeline="pipelined"))
    pre = []
    for batch in engine._pipeline.run_stream(iter(list(snapshots))):
        pre.append(engine._result_from_batch(batch))
        if len(pre) == delivered:
            break  # crash with later batches applied but never delivered
    engine.close()

    recovered = MnemonicEngine.open(directory)
    info = recovered.recovery_info
    assert info["corruption"] is None
    assert info["last_sealed_number"] == delivered - 1
    post = run_snapshots(recovered, snapshots[delivered:])
    recovered.close()
    assert identity_counts(pre + post) == straight


# ---------------------------------------------------------------------- mid-append torn journal
def test_crash_mid_journal_append(tmp_path):
    """A torn final record (half-written append) is detected and dropped.

    Every truncation point inside the final record — mid-header and
    mid-payload — must recover to the previous epoch boundary.
    """
    events = make_stream(seed=2205, length=80)
    snapshots = snapshots_for(events)
    with MnemonicEngine(path_query(), config=make_config()) as engine:
        straight = identity_counts(run_snapshots(engine, snapshots))

    crash_at = len(snapshots) - 2
    directory = tmp_path / "state"
    engine = MnemonicEngine(path_query(), config=make_config(directory))
    pre = run_snapshots(engine, snapshots[:crash_at])
    engine.close()

    journal = directory / "journal.log"
    intact = journal.read_bytes()
    from repro.storage.journal import scan_journal

    scan = scan_journal(journal)
    assert scan.corruption is None
    last_offset = scan.records[-1].offset
    # Tear the last record at a few byte positions: inside the header,
    # and inside the payload.
    for cut in (last_offset + 3, last_offset + 12, len(intact) - 1):
        journal.write_bytes(intact[:cut])
        recovered = MnemonicEngine.open(directory)
        info = recovered.recovery_info
        assert info["corruption"] is not None
        assert info["last_sealed_number"] == crash_at - 2
        post = run_snapshots(recovered, snapshots[crash_at - 1:])
        got = identity_counts(pre[: crash_at - 1] + post)
        recovered.close()
        assert got == straight, f"torn at byte {cut}"


# ---------------------------------------------------------------------- multi query
def test_multi_query_crash_with_membership_changes(tmp_path):
    """Recovery replays mid-stream register/unregister from the journal."""
    events = make_stream(seed=2206, length=160)
    snapshots = snapshots_for(events)
    third = len(snapshots) // 3

    def run_schedule(engine, crash_after: int | None):
        """register q1; run; register q2; run; unregister q1; run (maybe crash)."""
        per_query: dict[int, list] = {}

        def feed(chunk):
            for snapshot in chunk:
                result = engine.process_snapshot(snapshot)
                for qid, r in result.per_query.items():
                    per_query.setdefault(qid, []).append(r)

        q1 = engine.register(path_query(), name="path")
        feed(snapshots[:third])
        q2 = engine.register(edge_query(), name="edge")
        feed(snapshots[third: 2 * third])
        engine.unregister(q1)
        if crash_after is None:
            feed(snapshots[2 * third:])
        else:
            feed(snapshots[2 * third: crash_after])
        return per_query, q2

    with MultiQueryEngine(config=make_config()) as engine:
        straight, straight_q2 = run_schedule(engine, crash_after=None)

    crash_after = 2 * third + 2
    directory = tmp_path / "state"
    engine = MultiQueryEngine(config=make_config(directory))
    pre, q2 = run_schedule(engine, crash_after=crash_after)
    engine.close()

    recovered = MultiQueryEngine.open(directory)
    info = recovered.recovery_info
    assert info["corruption"] is None
    assert recovered.registry.ids() == [q2]
    assert recovered.registry.get(q2).name == "edge"
    assert info["last_sealed_number"] == crash_after - 1
    for snapshot in snapshots[crash_after:]:
        result = recovered.process_snapshot(snapshot)
        for qid, r in result.per_query.items():
            pre.setdefault(qid, []).append(r)
    recovered.close()

    assert set(pre) == set(straight)
    for qid in straight:
        assert identity_counts(pre[qid]) == identity_counts(straight[qid]), f"query {qid}"


def test_multi_query_pipelined_crash(tmp_path):
    """Pipelined multi-query crash: only delivered epochs are sealed."""
    events = make_stream(seed=2207, length=120)
    snapshots = snapshots_for(events)
    delivered = 5

    with MultiQueryEngine(config=make_config()) as engine:
        engine.register(path_query(), name="path")
        engine.register(edge_query(), name="edge")
        straight = {}
        for snapshot in snapshots:
            for qid, r in engine.process_snapshot(snapshot).per_query.items():
                straight.setdefault(qid, []).append(r)

    directory = tmp_path / "state"
    engine = MultiQueryEngine(config=make_config(directory, pipeline="pipelined"))
    engine.register(path_query(), name="path")
    engine.register(edge_query(), name="edge")
    pre: dict[int, list] = {}
    count = 0
    for batch in engine._pipeline.run_stream(iter(list(snapshots))):
        for qid, r in engine._result_from_batch(batch).per_query.items():
            pre.setdefault(qid, []).append(r)
        count += 1
        if count == delivered:
            break
    engine.close()

    recovered = MultiQueryEngine.open(directory)
    assert recovered.recovery_info["last_sealed_number"] == delivered - 1
    for snapshot in snapshots[delivered:]:
        for qid, r in recovered.process_snapshot(snapshot).per_query.items():
            pre.setdefault(qid, []).append(r)
    recovered.close()
    for qid in straight:
        assert identity_counts(pre[qid]) == identity_counts(straight[qid])


# ---------------------------------------------------------------------- service facade
def test_service_open_dispatches_on_engine_kind(tmp_path):
    single_dir = tmp_path / "single"
    engine = MnemonicEngine(path_query(), config=make_config(single_dir))
    run_snapshots(engine, snapshots_for(make_stream(seed=2208, length=40)))
    engine.close()
    service = MnemonicService.open(single_dir)
    assert isinstance(service.engine, MnemonicEngine)
    last = service.engine.recovery_info["last_sealed_number"]
    assert service._number == last + 1  # numbering resumes past sealed epochs
    service.engine.close()

    multi_dir = tmp_path / "multi"
    engine = MultiQueryEngine(config=make_config(multi_dir))
    engine.register(path_query(), name="path")
    run_snapshots(engine, snapshots_for(make_stream(seed=2209, length=40)))
    engine.close()
    service = MnemonicService.open(multi_dir)
    assert isinstance(service.engine, MultiQueryEngine)
    assert service.engine.registry.get(0).name == "path"
    service.engine.close()


def test_service_crash_and_resume_via_submit(tmp_path):
    """End-to-end through the service facade: submit, crash, reopen, resubmit."""
    events = [e for e in make_stream(seed=2210, length=60) if e.kind is EventKind.INSERT]
    with MnemonicEngine(path_query(), config=make_config()) as engine:
        with MnemonicService(engine) as service:
            service.submit(list(events))
            straight = identity_counts(service.drain())

    directory = tmp_path / "state"
    cut = len(events) // 2
    engine = MnemonicEngine(path_query(), config=make_config(directory))
    service = MnemonicService(engine)
    service.submit(events[:cut])
    pre = service.drain()
    engine.close()  # crash; the service object is abandoned with its engine

    service = MnemonicService.open(directory)
    service.submit(events[cut:])
    post = service.drain()
    service.engine.close()
    assert identity_counts(pre + post) == straight


# ---------------------------------------------------------------------- guard rails
def test_fresh_engine_refuses_existing_state(tmp_path):
    directory = tmp_path / "state"
    engine = MnemonicEngine(path_query(), config=make_config(directory))
    engine.close()
    with pytest.raises(ConfigurationError, match="already contains durable state"):
        MnemonicEngine(path_query(), config=make_config(directory))


def test_storage_excludes_external_edge_store():
    config = EngineConfig(
        stream=StreamConfig(
            stream_type=StreamType.INSERT_DELETE, batch_size=BATCH, in_memory_window=16
        ),
        storage=StorageConfig(directory="unused"),
    )
    with pytest.raises(ConfigurationError):
        MnemonicEngine(path_query(), config=config)


def test_explicit_checkpoint_requires_quiescence(tmp_path):
    directory = tmp_path / "state"
    engine = MnemonicEngine(path_query(), config=make_config(directory))
    snapshots = snapshots_for(make_stream(seed=2211, length=24))
    run_snapshots(engine, snapshots)
    engine.checkpoint()  # quiescent: every applied batch delivered
    counters = engine.storage_counters()
    assert counters["checkpoints_written"] >= 2
    engine.close()


# ---------------------------------------------------------------------- randomized
@pytest.mark.parametrize("pipeline", ["serial", "pipelined"])
def test_randomized_crash_recovery(tmp_path, rng_seed, pipeline):
    """Property test: random stream, random crash point, recovery parity.

    Prints the seed on failure (see the ``rng_seed`` fixture); replay
    with ``REPRO_TEST_SEED=<seed>``.
    """
    rng = make_rng(rng_seed)
    events = make_stream(seed=int(rng.integers(2**31)), length=int(rng.integers(60, 160)))
    snapshots = snapshots_for(events)
    with MnemonicEngine(path_query(), config=make_config()) as engine:
        straight = identity_counts(run_snapshots(engine, snapshots))

    crash_at = int(rng.integers(len(snapshots)))
    directory = tmp_path / "state"
    engine = MnemonicEngine(path_query(), config=make_config(directory, pipeline=pipeline))
    if pipeline == "serial":
        pre = run_snapshots(engine, snapshots[:crash_at])
    else:
        pre = []
        if crash_at:
            for batch in engine._pipeline.run_stream(iter(list(snapshots))):
                pre.append(engine._result_from_batch(batch))
                if len(pre) == crash_at:
                    break
    engine.close()

    recovered = MnemonicEngine.open(directory)
    info = recovered.recovery_info
    last = info["last_sealed_number"]
    resume = 0 if last is None else last + 1
    assert resume == crash_at
    post = run_snapshots(recovered, snapshots[crash_at:])
    assert recovered.storage_counters()["spilled_rows"] >= 0
    recovered.close()
    assert identity_counts(pre + post) == straight
