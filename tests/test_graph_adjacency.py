"""Unit tests for the dynamic multigraph store (adjacency lists, recycling)."""

import pytest

from repro.graph.adjacency import DynamicGraph
from repro.utils.validation import GraphError


class TestBasicMutations:
    def test_add_edge_creates_vertices(self):
        graph = DynamicGraph()
        eid = graph.add_edge(1, 2, label=3, timestamp=1.5, src_label=7, dst_label=8)
        assert graph.num_vertices == 2
        assert graph.num_edges == 1
        record = graph.edge(eid)
        assert (record.src, record.dst, record.label, record.timestamp) == (1, 2, 3, 1.5)
        assert graph.vertex_label(1) == 7
        assert graph.vertex_label(2) == 8

    def test_parallel_edges_have_distinct_ids(self):
        graph = DynamicGraph()
        e1 = graph.add_edge(1, 2, label=0)
        e2 = graph.add_edge(1, 2, label=0)
        assert e1 != e2
        assert graph.num_edges == 2
        assert set(graph.find_edges(1, 2, 0)) == {e1, e2}

    def test_out_in_edges_and_degrees(self):
        graph = DynamicGraph()
        graph.add_edge(1, 2)
        graph.add_edge(1, 3)
        graph.add_edge(4, 1)
        assert graph.out_degree(1) == 2
        assert graph.in_degree(1) == 1
        assert graph.degree(1) == 3
        assert len(list(graph.incident_edges(1))) == 3

    def test_label_degrees(self):
        graph = DynamicGraph()
        graph.add_edge(1, 2, label=5)
        graph.add_edge(1, 3, label=5)
        graph.add_edge(1, 4, label=6)
        assert graph.out_label_degree(1, 5) == 2
        assert graph.out_label_degree(1, 6) == 1
        assert graph.in_label_degree(2, 5) == 1
        assert graph.out_label_degree(1, 99) == 0

    def test_label_degrees_without_tracking(self):
        graph = DynamicGraph(track_label_degrees=False)
        graph.add_edge(1, 2, label=5)
        graph.add_edge(1, 3, label=5)
        assert graph.out_label_degree(1, 5) == 2
        assert graph.in_label_degree(3, 5) == 1

    def test_relabel_vertex_rejected(self):
        graph = DynamicGraph()
        graph.add_vertex(1, 5)
        with pytest.raises(GraphError):
            graph.add_vertex(1, 6)
        # Re-adding with label 0 (unknown) is tolerated.
        graph.add_vertex(1, 0)
        assert graph.vertex_label(1) == 5

    def test_edges_iterator_skips_dead(self):
        graph = DynamicGraph()
        e1 = graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        graph.delete_edge(e1)
        alive = list(graph.edges())
        assert len(alive) == 1
        assert alive[0].src == 2


class TestDeletionAndRecycling:
    def test_delete_edge_updates_adjacency(self):
        graph = DynamicGraph()
        e1 = graph.add_edge(1, 2)
        e2 = graph.add_edge(1, 3)
        graph.delete_edge(e1)
        assert graph.num_edges == 1
        assert graph.out_edges(1) == [e2]
        assert graph.in_edges(2) == []
        assert not graph.is_alive(e1)

    def test_delete_unknown_edge_rejected(self):
        graph = DynamicGraph()
        with pytest.raises(GraphError):
            graph.delete_edge(0)

    def test_double_delete_rejected(self):
        graph = DynamicGraph()
        eid = graph.add_edge(1, 2)
        graph.delete_edge(eid)
        with pytest.raises(GraphError):
            graph.delete_edge(eid)

    def test_delete_edge_instance_picks_latest(self):
        graph = DynamicGraph()
        e1 = graph.add_edge(1, 2, 0)
        e2 = graph.add_edge(1, 2, 0)
        record = graph.delete_edge_instance(1, 2, 0)
        assert record.edge_id == e2
        assert graph.is_alive(e1)

    def test_delete_edge_instance_missing(self):
        graph = DynamicGraph()
        graph.add_edge(1, 2, 0)
        with pytest.raises(GraphError):
            graph.delete_edge_instance(1, 2, 7)

    def test_edge_id_recycling(self):
        graph = DynamicGraph(recycle_edge_ids=True)
        e1 = graph.add_edge(1, 2)
        graph.add_edge(3, 4)
        graph.delete_edge(e1)
        e3 = graph.add_edge(1, 5)  # same source vertex -> recycled id
        assert e3 == e1
        assert graph.num_placeholders == 2
        assert graph.stats.recycled == 1

    def test_recycling_only_for_same_source(self):
        graph = DynamicGraph(recycle_edge_ids=True)
        e1 = graph.add_edge(1, 2)
        graph.delete_edge(e1)
        e2 = graph.add_edge(9, 2)  # different source: no reuse
        assert e2 != e1

    def test_recycling_disabled(self):
        graph = DynamicGraph(recycle_edge_ids=False)
        e1 = graph.add_edge(1, 2)
        graph.delete_edge(e1)
        e2 = graph.add_edge(1, 3)
        assert e2 != e1
        assert graph.num_placeholders == 2

    def test_recycled_slot_holds_new_record(self):
        graph = DynamicGraph()
        e1 = graph.add_edge(1, 2, label=4, timestamp=1.0)
        graph.delete_edge(e1)
        e2 = graph.add_edge(1, 7, label=9, timestamp=2.0)
        assert e2 == e1
        record = graph.edge(e2)
        assert (record.dst, record.label, record.timestamp) == (7, 9, 2.0)
        # The old triple no longer resolves.
        assert graph.find_edges(1, 2, 4) == []

    def test_placeholder_growth_bounded_with_recycling(self):
        recycled = DynamicGraph(recycle_edge_ids=True)
        unrecycled = DynamicGraph(recycle_edge_ids=False)
        for i in range(100):
            for g in (recycled, unrecycled):
                g.add_edge(1, 100 + i)
                g.delete_edge_instance(1, 100 + i)
        assert recycled.num_placeholders == 1
        assert unrecycled.num_placeholders == 100


class TestBulkHelpers:
    def test_apply_insertions(self):
        graph = DynamicGraph()
        ids = graph.apply_insertions([(1, 2, 0), (2, 3, 1, 5.0)])
        assert len(ids) == 2
        assert graph.edge(ids[1]).timestamp == 5.0

    def test_copy_is_independent(self):
        graph = DynamicGraph()
        graph.add_edge(1, 2)
        clone = graph.copy()
        clone.add_edge(3, 4)
        assert graph.num_edges == 1
        assert clone.num_edges == 2
        # Deleting in the clone does not affect the original.
        clone.delete_edge_instance(1, 2, 0)
        assert graph.num_edges == 1

    def test_stats_sampling(self):
        graph = DynamicGraph()
        graph.add_edge(1, 2)
        graph.stats.sample_snapshot(0, graph.num_placeholders, graph.num_edges)
        assert graph.stats.snapshots[0]["placeholders"] == 1
        assert graph.stats.peak_live == 1


class TestIncrementalCSRExport:
    """The delta journal + spliced export must be element-identical to a
    full rebuild, for every mix of inserts, deletes, recycled ids and
    brand-new vertices."""

    @staticmethod
    def assert_snapshots_equal(a, b):
        import numpy as np

        for key, arr in a.arrays().items():
            assert np.array_equal(arr, b.arrays()[key]), key
        assert a.num_live_edges == b.num_live_edges

    def test_journal_tracks_touched_edges_and_vertices(self):
        graph = DynamicGraph()
        graph.add_edge(1, 2, label=3)
        assert graph.journal_size == (2, 1)
        graph.export_csr()
        assert graph.journal_size == (0, 0)
        eid = graph.add_edge(2, 3, label=3)
        graph.delete_edge(eid)
        assert graph.journal_size == (2, 1)

    def test_delta_without_cache_falls_back_to_full(self):
        graph = DynamicGraph()
        graph.add_edge(1, 2, label=3)
        snapshot = graph.export_csr_delta()
        assert snapshot.num_live_edges == 1
        assert graph.journal_size == (0, 0)

    def test_small_delta_is_spliced(self, monkeypatch):
        graph = DynamicGraph()
        for i in range(60):
            graph.add_edge(i, (i + 1) % 60, label=i % 3, timestamp=float(i))
        graph.export_csr()
        calls = []
        original = DynamicGraph._splice_csr

        def counting(self, prev):
            calls.append(prev)
            return original(self, prev)

        monkeypatch.setattr(DynamicGraph, "_splice_csr", counting)
        graph.add_edge(5, 7, label=1, timestamp=99.0)
        delta = graph.export_csr_delta()
        assert len(calls) == 1, "small batch must take the splice path"
        self.assert_snapshots_equal(delta, graph.copy().export_csr())

    def test_large_delta_falls_back_to_full_rebuild(self, monkeypatch):
        graph = DynamicGraph()
        for i in range(20):
            graph.add_edge(i, i + 1, label=0)
        graph.export_csr()
        monkeypatch.setattr(
            DynamicGraph, "_splice_csr",
            lambda self, prev: pytest.fail("large batch must rebuild fully"),
        )
        for i in range(20):  # touches most vertices
            graph.add_edge(i, i + 2, label=1)
        snapshot = graph.export_csr_delta()
        assert snapshot.num_live_edges == 40

    def test_randomised_splice_parity(self):
        import random

        import numpy as np

        rng = random.Random(5)
        graph = DynamicGraph()
        edges = []
        for _ in range(1500):
            e = graph.add_edge(
                rng.randrange(300), rng.randrange(300),
                label=rng.randrange(4), timestamp=rng.random(),
            )
            edges.append(e)
        graph.export_csr()
        spliced = 0
        for _ in range(40):
            for _ in range(rng.randrange(6)):
                v = rng.randrange(320)  # occasionally a brand-new vertex
                e = graph.add_edge(v, rng.randrange(320), label=rng.randrange(4),
                                   timestamp=rng.random())
                edges.append(e)
            rng.shuffle(edges)
            for _ in range(rng.randrange(4)):
                if edges:
                    e = edges.pop()
                    if graph.is_alive(e):
                        graph.delete_edge(e)  # recycles ids
            before = graph.journal_size
            delta = graph.export_csr_delta()
            if 0 < before[0] <= 300 * DynamicGraph.INCREMENTAL_EXPORT_MAX_DIRTY_FRACTION:
                spliced += 1
            self.assert_snapshots_equal(delta, graph.copy().export_csr())
            assert graph.journal_size == (0, 0)
            # Arrays are fresh objects: the cached previous snapshot is
            # never patched in place (consumers may still hold it).
            assert delta.edge_src.flags.owndata or delta.edge_src.base is None
        assert spliced > 20, f"splice path under-exercised ({spliced}/40 rounds)"

    def test_recycled_id_changes_are_patched(self):
        graph = DynamicGraph()
        a = graph.add_edge(1, 2, label=3, timestamp=1.0)
        graph.add_edge(2, 3, label=4, timestamp=2.0)
        graph.export_csr()
        graph.delete_edge(a)
        recycled = graph.add_edge(1, 5, label=9, timestamp=7.0)
        assert recycled == a  # id reuse is the point
        delta = graph.export_csr_delta()
        assert delta.edge_dst[recycled] == 5
        assert delta.edge_label[recycled] == 9
        assert delta.edge_timestamp[recycled] == 7.0
        assert delta.edge_alive[recycled] == 1
        self.assert_snapshots_equal(delta, graph.copy().export_csr())
