"""Unit tests for dual / strong simulation and the DEBI-seeded incremental variant."""


from repro.core.engine import MnemonicEngine
from repro.graph.adjacency import DynamicGraph
from repro.matchers.simulation import (
    dual_simulation,
    dual_simulation_from_debi,
    query_diameter,
    strong_simulation,
)
from repro.query.query_graph import QueryGraph
from repro.streams.events import StreamEvent


def chain_graph():
    graph = DynamicGraph()
    graph.add_edge(1, 2, src_label=0, dst_label=1)
    graph.add_edge(2, 3, src_label=1, dst_label=2)
    graph.add_edge(4, 5, src_label=0, dst_label=1)  # dangling A -> B with no B -> C
    return graph


def chain_query():
    return QueryGraph.from_edges([(0, 1), (1, 2)], node_labels={0: 0, 1: 1, 2: 2})


class TestDualSimulation:
    def test_simple_chain(self):
        sim = dual_simulation(chain_graph(), chain_query())
        assert sim[0] == {1}
        assert sim[1] == {2}
        assert sim[2] == {3}

    def test_empty_when_pattern_absent(self):
        graph = DynamicGraph()
        graph.add_edge(1, 2, src_label=0, dst_label=1)
        assert dual_simulation(graph, chain_query()) == {}

    def test_dual_condition_prunes_unreachable(self):
        graph = chain_graph()
        # Vertex 6 has the right label for query node 2 but no incoming B edge.
        graph.add_vertex(6, 2)
        sim = dual_simulation(graph, chain_query())
        assert 6 not in sim[2]

    def test_simulation_accepts_cycles_smaller_than_query(self):
        # Classic simulation example: a 2-cycle simulates a longer even cycle query.
        graph = DynamicGraph()
        graph.add_edge(1, 2, src_label=0, dst_label=1)
        graph.add_edge(2, 1, src_label=1, dst_label=0)
        query = QueryGraph.from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 0)], node_labels={0: 0, 1: 1, 2: 0, 3: 1}
        )
        sim = dual_simulation(graph, query)
        assert sim and sim[0] == {1} and sim[1] == {2}

    def test_wildcard_labels(self):
        query = QueryGraph.from_edges([(0, 1)])
        graph = DynamicGraph()
        graph.add_edge(7, 8)
        sim = dual_simulation(graph, query)
        assert sim[0] == {7} and sim[1] == {8}


class TestIncrementalSimulationFromDEBI:
    def test_matches_from_scratch_after_stream(self):
        query = chain_query()
        engine = MnemonicEngine(query)
        events = [
            StreamEvent.insert(1, 2, src_label=0, dst_label=1),
            StreamEvent.insert(2, 3, src_label=1, dst_label=2),
            StreamEvent.insert(4, 5, src_label=0, dst_label=1),
            StreamEvent.insert(5, 6, src_label=1, dst_label=2),
        ]
        engine.batch_inserts(events)
        incremental = dual_simulation_from_debi(engine)
        reference = dual_simulation(engine.graph, query)
        assert incremental == reference

    def test_matches_after_deletions(self):
        query = chain_query()
        engine = MnemonicEngine(query)
        engine.batch_inserts([
            StreamEvent.insert(1, 2, src_label=0, dst_label=1),
            StreamEvent.insert(2, 3, src_label=1, dst_label=2),
        ])
        engine.batch_deletes([StreamEvent.delete(2, 3, 0)])
        assert dual_simulation_from_debi(engine) == {}
        assert dual_simulation(engine.graph, query) == {}


class TestStrongSimulation:
    def test_query_diameter(self):
        assert query_diameter(chain_query()) == 2
        triangle = QueryGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        assert query_diameter(triangle) == 1

    def test_locality_restriction(self):
        graph = chain_graph()
        result = strong_simulation(graph, chain_query())
        assert result, "expected at least one ball with a full match"
        for centre, relation in result.items():
            assert relation  # every reported ball has a non-empty dual simulation
            assert all(matches for matches in relation.values())

    def test_strong_simulation_excludes_far_apart_matches(self):
        # The pattern exists only when the ball around the centre contains it.
        graph = DynamicGraph()
        graph.add_edge(1, 2, src_label=0, dst_label=1)
        graph.add_edge(2, 3, src_label=1, dst_label=2)
        result = strong_simulation(graph, chain_query())
        centres = set(result)
        assert centres  # centre selection uses the query root heuristic
        for relation in result.values():
            assert relation[2] == {3}
