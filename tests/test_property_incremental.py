"""Property-based tests for the core engine invariants.

These are the load-bearing correctness properties of the reproduction:

1. **State correctness** — over a random stream of insertions and
   deletions, split into random batches, the engine's graph + DEBI state
   always supports enumerating exactly the embeddings of the current
   graph (checked against an exhaustive oracle), and every embedding
   alive at the end was reported as positive at some point.
2. **Exactly-once emission** — for insert-only streams no edge-level
   embedding is ever reported twice, and the union of reports equals the
   oracle's answer on the final graph.
3. **DEBI invariant** — after every batch, a data edge's bit at a
   column is set iff the edge label-matches the column's query-tree edge
   and its child-side endpoint satisfies the downward subtree condition.
4. **Recycling neutrality** — edge-id recycling never changes answers.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.engine import EngineConfig, MnemonicEngine
from repro.core.enumeration import decompose_batch
from repro.core.parallel import ParallelConfig, run_enumeration
from repro.matchers import HomomorphismMatcher, IsomorphismMatcher
from repro.query.query_graph import QueryGraph
from repro.streams.events import StreamEvent
from tests.conftest import brute_force_node_maps

# ---------------------------------------------------------------------- strategies
_VERTICES = list(range(6))
_VERTEX_LABEL = {v: v % 2 for v in _VERTICES}


def _query_strategy():
    """A few representative small queries (paths, stars, cycles) over labels {0,1}."""
    q_path = QueryGraph.from_edges([(0, 1), (1, 2)], node_labels={0: 0, 1: 1, 2: 0})
    q_cycle = QueryGraph.from_edges([(0, 1), (1, 2), (2, 0)], node_labels={0: 0, 1: 1, 2: 0})
    q_star = QueryGraph.from_edges([(0, 1), (0, 2), (3, 0)], node_labels={0: 1, 1: 0, 2: 0, 3: 0})
    q_wild = QueryGraph.from_edges([(0, 1), (1, 2), (1, 3)])
    return st.sampled_from([q_path, q_cycle, q_star, q_wild])


_event_ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "insert", "insert", "delete"]),  # bias towards inserts
        st.sampled_from(_VERTICES),
        st.sampled_from(_VERTICES),
        st.integers(min_value=0, max_value=1),
    ),
    min_size=4,
    max_size=40,
)

_batch_splits = st.lists(st.integers(min_value=1, max_value=7), min_size=1, max_size=12)


def _materialise_events(ops):
    """Turn raw ops into applicable StreamEvents (skip impossible deletes, self-loops)."""
    from collections import Counter

    live = Counter()
    events = []
    for kind, src, dst, label in ops:
        if src == dst:
            continue
        if kind == "insert":
            events.append(StreamEvent.insert(src, dst, label, 0.0,
                                             _VERTEX_LABEL[src], _VERTEX_LABEL[dst]))
            live[(src, dst, label)] += 1
        else:
            if live[(src, dst, label)] > 0:
                events.append(StreamEvent.delete(src, dst, label))
                live[(src, dst, label)] -= 1
    return events


def _split_into_batches(events, splits):
    batches = []
    position, index = 0, 0
    while position < len(events):
        size = splits[index % len(splits)]
        batches.append(events[position : position + size])
        position += size
        index += 1
    return batches


def _run_incremental(query, events, splits, match_def):
    """Feed the events through the engine in batches; return (engine, positives, negatives)."""
    engine = MnemonicEngine(query, match_def=match_def)
    positives, negatives = [], []
    for batch in _split_into_batches(events, splits):
        inserts = [e for e in batch if e.is_insert]
        deletes = [e for e in batch if e.is_delete]
        if inserts:
            positives.extend(engine.batch_inserts(inserts).positive_embeddings)
        if deletes:
            negatives.extend(engine.batch_deletes(deletes).negative_embeddings)
    return engine, positives, negatives


def _full_enumeration_node_maps(engine):
    """Enumerate the engine's *current* graph through its own DEBI and context."""
    live_ids = [record.edge_id for record in engine.graph.edges()]
    context = engine._make_context(batch_edge_ids=set(live_ids), positive=True)
    units = decompose_batch(context, live_ids)
    outcome = run_enumeration(context, units, ParallelConfig())
    return {embedding.node_map for embedding in outcome.embeddings}


class TestStateCorrectness:
    @given(_query_strategy(), _event_ops, _batch_splits, st.booleans())
    @settings(max_examples=50, deadline=None)
    def test_engine_state_matches_oracle(self, query, ops, splits, injective):
        events = _materialise_events(ops)
        if not events:
            return
        match_def = IsomorphismMatcher() if injective else HomomorphismMatcher()
        engine, positives, _ = _run_incremental(query, events, splits, match_def)
        expected = brute_force_node_maps(query, engine.graph, injective=injective)
        # The DEBI-backed state supports enumerating exactly the oracle answer.
        assert _full_enumeration_node_maps(engine) == expected
        # Every embedding alive at the end was reported when it was created.
        assert expected <= {e.node_map for e in positives}

    @given(_query_strategy(), _event_ops, _batch_splits)
    @settings(max_examples=40, deadline=None)
    def test_insert_only_exactly_once(self, query, ops, splits):
        events = [e for e in _materialise_events(ops) if e.is_insert]
        if not events:
            return
        engine, positives, _ = _run_incremental(query, events, splits, IsomorphismMatcher())
        identities = [(e.node_map, e.edge_map) for e in positives]
        assert len(identities) == len(set(identities))
        assert {e.node_map for e in positives} == brute_force_node_maps(
            query, engine.graph, injective=True
        )

    @given(_query_strategy(), _event_ops, _batch_splits)
    @settings(max_examples=30, deadline=None)
    def test_negative_embeddings_existed_before_their_batch(self, query, ops, splits):
        """Every destroyed embedding was positive at some earlier point (or created
        earlier in the same run), i.e. negatives never report phantom matches."""
        events = _materialise_events(ops)
        if not events:
            return
        engine, positives, negatives = _run_incremental(query, events, splits,
                                                        IsomorphismMatcher())
        positive_maps = {e.node_map for e in positives}
        for embedding in negatives:
            assert embedding.node_map in positive_maps


class TestDEBIInvariant:
    @given(_query_strategy(), _event_ops, _batch_splits)
    @settings(max_examples=40, deadline=None)
    def test_bits_match_definition_after_every_batch(self, query, ops, splits):
        events = _materialise_events(ops)
        if not events:
            return
        engine = MnemonicEngine(query)
        manager = engine.index_manager
        for batch in _split_into_batches(events, splits):
            inserts = [e for e in batch if e.is_insert]
            deletes = [e for e in batch if e.is_delete]
            if inserts:
                engine.batch_inserts(inserts)
            if deletes:
                engine.batch_deletes(deletes)
            for record in engine.graph.edges():
                for tree_edge in engine.tree.tree_edges:
                    expected = manager._bit_should_be_set(record, tree_edge)
                    actual = engine.debi.get(record.edge_id, tree_edge.column)
                    assert actual == expected, (
                        f"DEBI bit mismatch for edge {record} column {tree_edge.column}"
                    )
            for vertex in engine.graph.vertices():
                expected_root = (
                    engine.match_def.root_matcher(query, engine.graph, engine.tree.root, vertex)
                    and manager.down_ok(vertex, engine.tree.root)
                )
                assert engine.debi.is_root(vertex) == expected_root


class TestRecyclingNeutrality:
    @given(_event_ops, _batch_splits)
    @settings(max_examples=30, deadline=None)
    def test_engine_answers_unaffected_by_recycling(self, ops, splits):
        events = _materialise_events(ops)
        if not events:
            return
        query = QueryGraph.from_edges([(0, 1), (1, 2)], node_labels={0: 0, 1: 1, 2: 0})

        def run(recycle):
            engine = MnemonicEngine(query, config=EngineConfig(recycle_edge_ids=recycle))
            for batch in _split_into_batches(events, splits):
                inserts = [e for e in batch if e.is_insert]
                deletes = [e for e in batch if e.is_delete]
                if inserts:
                    engine.batch_inserts(inserts)
                if deletes:
                    engine.batch_deletes(deletes)
            return engine

        engine_a = run(True)
        engine_b = run(False)
        assert _full_enumeration_node_maps(engine_a) == _full_enumeration_node_maps(engine_b)
        assert engine_a.graph.num_placeholders <= engine_b.graph.num_placeholders
