"""Unit tests for the numpy-backed bitsets underlying DEBI."""

import pytest

from repro.utils.bitset import BitMatrix, BitVector


class TestBitVector:
    def test_default_bits_are_zero(self):
        vector = BitVector()
        assert not vector.get(0)
        assert not vector.get(10_000)
        assert vector.count() == 0

    def test_set_and_get(self):
        vector = BitVector()
        vector.set(3)
        vector.set(64)
        vector.set(65)
        assert vector.get(3)
        assert vector.get(64)
        assert vector.get(65)
        assert not vector.get(4)
        assert vector.count() == 3

    def test_clear(self):
        vector = BitVector()
        vector.set(5)
        vector.clear(5)
        assert not vector.get(5)
        # Clearing a never-written index is a no-op.
        vector.clear(1_000_000)
        assert vector.count() == 0

    def test_assign(self):
        vector = BitVector()
        vector.assign(7, True)
        assert vector.get(7)
        vector.assign(7, False)
        assert not vector.get(7)

    def test_growth_preserves_bits(self):
        vector = BitVector(initial_capacity=8)
        vector.set(2)
        vector.set(3_000)
        assert vector.get(2)
        assert vector.get(3_000)

    def test_iter_set_and_to_set(self):
        vector = BitVector()
        expected = {1, 63, 64, 100, 1025}
        for index in expected:
            vector.set(index)
        assert list(vector.iter_set()) == sorted(expected)
        assert vector.to_set() == expected

    def test_contains_and_len(self):
        vector = BitVector()
        vector.set(9)
        assert 9 in vector
        assert 8 not in vector
        assert len(vector) == 10

    def test_clear_all(self):
        vector = BitVector()
        for i in range(50):
            vector.set(i * 7)
        vector.clear_all()
        assert vector.count() == 0

    def test_negative_index_rejected(self):
        vector = BitVector()
        with pytest.raises(Exception):
            vector.set(-1)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(Exception):
            BitVector(initial_capacity=0)


class TestBitMatrix:
    def test_basic_set_get_clear(self):
        matrix = BitMatrix(width=6)
        matrix.set(0, 0)
        matrix.set(3, 5)
        assert matrix.get(0, 0)
        assert matrix.get(3, 5)
        assert not matrix.get(3, 4)
        matrix.clear(3, 5)
        assert not matrix.get(3, 5)

    def test_row_mask_roundtrip(self):
        matrix = BitMatrix(width=8)
        matrix.set_row(4, 0b1010_1010)
        assert matrix.get_row(4) == 0b1010_1010
        assert matrix.get(4, 1)
        assert not matrix.get(4, 0)

    def test_row_mask_out_of_range_rejected(self):
        matrix = BitMatrix(width=4)
        with pytest.raises(ValueError):
            matrix.set_row(0, 1 << 4)

    def test_clear_row(self):
        matrix = BitMatrix(width=4)
        matrix.set(2, 1)
        matrix.set(2, 3)
        matrix.clear_row(2)
        assert matrix.get_row(2) == 0
        assert not matrix.row_any(2)

    def test_column_count_and_rows_with_column(self):
        matrix = BitMatrix(width=3)
        matrix.set(0, 1)
        matrix.set(5, 1)
        matrix.set(5, 2)
        assert matrix.column_count(1) == 2
        assert matrix.column_count(2) == 1
        assert set(matrix.rows_with_column(1).tolist()) == {0, 5}

    def test_total_count(self):
        matrix = BitMatrix(width=3)
        matrix.set(0, 0)
        matrix.set(1, 1)
        matrix.set(2, 2)
        assert matrix.count() == 3

    def test_growth_preserves_rows(self):
        matrix = BitMatrix(width=2, initial_rows=2)
        matrix.set(0, 0)
        matrix.set(4_000, 1)
        assert matrix.get(0, 0)
        assert matrix.get(4_000, 1)

    def test_unwritten_rows_read_as_zero(self):
        matrix = BitMatrix(width=2)
        assert matrix.get_row(12345) == 0
        assert not matrix.get(12345, 0)

    def test_column_out_of_range(self):
        matrix = BitMatrix(width=2)
        with pytest.raises(IndexError):
            matrix.get(0, 2)
        with pytest.raises(IndexError):
            matrix.set(0, 5)

    def test_width_limit(self):
        with pytest.raises(ValueError):
            BitMatrix(width=65)
        BitMatrix(width=64)  # exactly 64 is allowed

    def test_clear_all_and_nbytes(self):
        matrix = BitMatrix(width=4)
        matrix.set(10, 3)
        assert matrix.nbytes() > 0
        matrix.clear_all()
        assert matrix.count() == 0
