"""Unit tests for the benchmark harness, metrics and reporting helpers."""

import pytest

from repro.bench.harness import (
    BenchRun,
    run_bigjoin_inserts,
    run_ceci_per_snapshot,
    run_litcs_stream,
    run_mnemonic_stream,
    run_service_stream,
    run_turboflux_stream,
)
from repro.bench.metrics import cpu_usage_timeline, mean_runtime, speedup_table, traversals_per_update
from repro.bench.reporting import format_series, format_table
from repro.core.parallel import ParallelConfig
from repro.datasets import NetFlowConfig, generate_netflow_stream, graph_from_events
from repro.matchers import HomomorphismMatcher
from repro.query.generator import QueryGenerator


@pytest.fixture(scope="module")
def workload():
    stream = generate_netflow_stream(NetFlowConfig(num_events=800, num_hosts=80, seed=31))
    graph = graph_from_events(stream[:600])
    query = QueryGenerator(graph, seed=7).tree_query(3)
    return query, stream


class TestHarnessRunners:
    def test_mnemonic_runner(self, workload):
        query, stream = workload
        run = run_mnemonic_stream(query, stream, initial_prefix=600, batch_size=64,
                                  query_name="T_3")
        assert run.system == "Mnemonic"
        assert run.seconds > 0
        assert run.extra["snapshots"] > 0
        assert run.run_result is not None
        assert run.throughput >= 0

    def test_throughput_clamps_zero_duration(self):
        # Regression: a timed section that rounded to <= 0 seconds used to
        # report throughput 0.0 even though embeddings were found.
        run = BenchRun(system="x", query_name="q", seconds=0.0, embeddings=5)
        assert run.throughput > 0
        run = BenchRun(system="x", query_name="q", seconds=-0.0, embeddings=3,
                       negative_embeddings=2)
        assert run.throughput > 0
        # No embeddings still reports 0, and a real duration divides normally.
        assert BenchRun("x", "q", seconds=0.0, embeddings=0).throughput == 0.0
        assert BenchRun("x", "q", seconds=2.0, embeddings=4).throughput == 2.0

    def test_service_runner(self, workload):
        query, stream = workload
        baseline = run_mnemonic_stream(query, stream, initial_prefix=600,
                                       batch_size=64, collect_embeddings=True)
        run = run_service_stream(query, stream, initial_prefix=600, batch_size=64,
                                 collect_embeddings=True, query_name="T_3")
        assert run.system == "Mnemonic-service"
        assert run.embeddings == baseline.embeddings
        assert run.extra["candidates_scanned"] == baseline.extra["candidates_scanned"]
        assert run.latency  # broker-fed: every snapshot has an ingest latency
        assert run.latency["count"] == run.extra["snapshots"]
        assert run.latency["p50"] <= run.latency["p95"] <= run.latency["p99"]
        assert run.extra["broker"]["enqueued"] == len(stream) - 600

    def test_turboflux_runner(self, workload):
        query, stream = workload
        run = run_turboflux_stream(query, stream, initial_prefix=600, query_name="T_3")
        assert run.system == "TurboFlux"
        assert run.seconds > 0
        assert run.extra["traversed_edges"] > 0

    def test_runners_agree_on_embedding_counts(self, workload):
        query, stream = workload
        mnemonic = run_mnemonic_stream(query, stream, initial_prefix=600, batch_size=64)
        turboflux = run_turboflux_stream(query, stream, initial_prefix=600)
        # The NetFlow generator can emit parallel edges, which Mnemonic counts
        # per instance and TurboFlux collapses, so Mnemonic finds at least as many.
        assert mnemonic.embeddings >= turboflux.embeddings

    def test_bigjoin_runner(self, workload):
        query, stream = workload
        run = run_bigjoin_inserts(query, stream, match_def=HomomorphismMatcher(),
                                  initial_prefix=700, batch_size=50)
        assert run.system == "BigJoin"
        assert run.extra["intersections"] > 0

    def test_ceci_runner(self, workload):
        query, stream = workload
        run = run_ceci_per_snapshot(query, stream, snapshot_points=[600, 700, 800])
        assert run.system == "CECI"
        assert run.extra["snapshots"] == 3
        assert run.seconds >= 0

    def test_litcs_runner(self):
        from repro.datasets import LANLConfig, generate_lanl_stream, build_query_workload

        stream = generate_lanl_stream(LANLConfig(num_events=600, num_entities=80, seed=17))
        workload = build_query_workload(stream, tree_sizes=(3,), graph_sizes=(),
                                        queries_per_suite=1, with_timestamps=True, seed=2)
        query = workload.queries("T_3")[0]
        run = run_litcs_stream(query, stream, query_name="T_3")
        assert run.system == "Li et al."
        assert run.extra["peak_stored_partials"] >= 0

    def test_mnemonic_parallel_and_window_options(self, workload):
        query, stream = workload
        run = run_mnemonic_stream(
            query, stream, initial_prefix=700, batch_size=32,
            parallel=ParallelConfig(backend="thread", num_workers=2),
        )
        assert run.seconds > 0


class TestMetrics:
    def test_speedup_table(self):
        baseline = {"T_3": 10.0, "T_6": 20.0}
        system = {"T_3": 2.0, "T_6": 40.0, "T_9": 1.0}
        speedups = speedup_table(baseline, system)
        assert speedups["T_3"] == pytest.approx(5.0)
        assert speedups["T_6"] == pytest.approx(0.5)
        assert "T_9" not in speedups

    def test_cpu_usage_timeline(self, workload):
        query, stream = workload
        run = run_mnemonic_stream(query, stream, initial_prefix=600, batch_size=64,
                                  parallel=ParallelConfig(backend="thread", num_workers=2))
        series = cpu_usage_timeline(run.run_result, buckets=10)
        assert len(series) == 10
        assert all(0.0 <= value <= 1.0 for _, value in series)

    def test_traversals_per_update(self, workload):
        query, stream = workload
        run = run_mnemonic_stream(query, stream, initial_prefix=600, batch_size=64)
        assert traversals_per_update(run.run_result) > 0

    def test_mean_runtime(self):
        assert mean_runtime([]) == 0.0
        assert mean_runtime([1.0, 3.0]) == 2.0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table("Title", ["name", "value"], [["a", 1.5], ["bbbb", 2]])
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_series(self):
        text = format_series("S", {"x1": 1.0, "x2": 2.0}, value_name="runtime")
        assert "runtime" in text
        assert "x2" in text
