"""Columnar ingest parity: vectorized batch mutations vs the per-edge path.

The columnar ingest path (``EngineConfig.ingest="columnar"``) must be
*bit-identical* to the per-edge reference — same edge-id sequences
(including per-source newest-first recycling), same DEBI bits, same scan
counters, same published snapshot bytes.  These tests pin that contract:

1. **Graph parity (property)** — ``apply_insert_columns`` /
   ``apply_delete_columns`` replay exactly as a per-event
   ``add_edge`` / ``delete_edge`` loop: same returned ids, same CSR
   export, across random streams with duplicate parallel edges and
   recycling.
2. **Engine parity (property)** — full runs, columnar vs per-edge:
   identical positive/negative identity sets and per-snapshot counters.
3. **Edge cases** — duplicate parallel edges in one batch,
   delete-then-reinsert hitting a recycled id, empty batches.
4. **Publish regimes** — dirty-slice publication is byte-identical to a
   fresh full export, and an interloper export forces the full-copy
   fallback.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.debi import DEBI
from repro.core.engine import EngineConfig, MnemonicEngine
from repro.core.shared_snapshot import SharedSnapshotWriter, SnapshotAttachment
from repro.graph.adjacency import DynamicGraph
from repro.query.query_graph import QueryGraph
from repro.query.query_tree import QueryTree
from repro.streams.events import EventColumns, EventKind, StreamEvent
from repro.utils.validation import ConfigurationError

# ---------------------------------------------------------------------- strategies
_VERTICES = list(range(6))
_VERTEX_LABEL = {v: v % 2 for v in _VERTICES}

_event_ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "insert", "insert", "delete"]),
        st.sampled_from(_VERTICES),
        st.sampled_from(_VERTICES),
        st.integers(min_value=0, max_value=1),
    ),
    min_size=4,
    max_size=40,
)

_batch_sizes = st.integers(min_value=1, max_value=7)


def _materialise_events(ops):
    """Applicable StreamEvents (skip impossible deletes and self-loops)."""
    from collections import Counter

    live = Counter()
    events = []
    for kind, src, dst, label in ops:
        if src == dst:
            continue
        if kind == "insert":
            events.append(
                StreamEvent.insert(
                    src, dst, label, 0.0, _VERTEX_LABEL[src], _VERTEX_LABEL[dst]
                )
            )
            live[(src, dst, label)] += 1
        elif live[(src, dst, label)] > 0:
            events.append(StreamEvent.delete(src, dst, label))
            live[(src, dst, label)] -= 1
    return events


def _split(events, size):
    return [events[i : i + size] for i in range(0, len(events), size)]


def _columns(kind, events):
    return EventColumns.from_events(kind, events)


# ---------------------------------------------------------------------- graph parity
def _graph_state(graph: DynamicGraph):
    csr = graph.export_csr()
    return {key: arr.copy() for key, arr in csr.arrays().items()}


@settings(max_examples=40, deadline=None)
@given(ops=_event_ops, size=_batch_sizes)
def test_columnar_graph_parity(ops, size):
    """apply_*_columns replays the per-event loop: same ids, same CSR."""
    events = _materialise_events(ops)
    ref = DynamicGraph()
    col = DynamicGraph()
    for batch in _split(events, size):
        inserts = [e for e in batch if e.kind is EventKind.INSERT]
        deletes = [e for e in batch if e.kind is EventKind.DELETE]

        ref_ids = [
            ref.add_edge(
                e.src, e.dst, e.label, e.timestamp,
                src_label=e.src_label, dst_label=e.dst_label,
            )
            for e in inserts
        ]
        if inserts:
            c = _columns(EventKind.INSERT, inserts)
            col_ids = list(
                col.apply_insert_columns(
                    c.src, c.dst, c.label, c.timestamp, c.src_label, c.dst_label
                )
            )
        else:
            col_ids = []
        assert [int(i) for i in col_ids] == ref_ids

        # resolve deletions identically on both graphs, then compare the
        # per-event delete loop against the bulk columnar apply
        from repro.core.registry import resolve_deletions

        ref_doomed = resolve_deletions(ref, deletes)
        col_doomed = resolve_deletions(col, deletes)
        assert col_doomed == ref_doomed
        ref_records = [ref.delete_edge(eid) for eid in ref_doomed]
        col_records = list(col.apply_delete_columns(col_doomed))
        assert len(col_records) == len(ref_records)
        for a, b in zip(col_records, ref_records):
            assert (a.src, a.dst, a.label) == (b.src, b.dst, b.label)

    ref_state = _graph_state(ref)
    col_state = _graph_state(col)
    assert ref_state.keys() == col_state.keys()
    for key in ref_state:
        assert np.array_equal(ref_state[key], col_state[key]), key
    assert ref.num_edges == col.num_edges


# ---------------------------------------------------------------------- engine parity
def _run_engine(query, events, batch_size, ingest):
    from repro.streams.generator import StreamType

    config = EngineConfig(ingest=ingest)
    config.stream.batch_size = batch_size
    config.stream.stream_type = StreamType.INSERT_DELETE
    engine = MnemonicEngine(query, config=config)
    try:
        result = engine.run(events)
        identities = []
        counters = []
        for snap in result.snapshots:
            identities.append(
                (
                    snap.number,
                    frozenset(e.identity() for e in snap.positive_embeddings),
                    frozenset(e.identity() for e in snap.negative_embeddings),
                )
            )
            counters.append(
                (
                    snap.number, snap.candidates_scanned, snap.filter_traversals,
                    snap.num_positive, snap.num_negative,
                    snap.live_edges, snap.debi_bits,
                )
            )
        return identities, counters
    finally:
        engine.close()


@settings(max_examples=15, deadline=None)
@given(ops=_event_ops, size=_batch_sizes)
def test_columnar_engine_parity(ops, size):
    """Full engine runs agree to the digit between ingest modes."""
    events = _materialise_events(ops)
    query = QueryGraph.from_edges(
        [(0, 1), (1, 2)], node_labels={0: 0, 1: 1, 2: 0}
    )
    ref = _run_engine(query, events, size, "per_edge")
    col = _run_engine(query, events, size, "columnar")
    assert ref == col


# ---------------------------------------------------------------------- edge cases
def test_duplicate_parallel_edges_single_batch():
    """N copies of the same (src, dst, label) in one batch: distinct ids."""
    events = [StreamEvent.insert(0, 1, 2, float(i), 0, 1) for i in range(5)]
    c = _columns(EventKind.INSERT, events)
    graph = DynamicGraph()
    ids = list(
        graph.apply_insert_columns(
            c.src, c.dst, c.label, c.timestamp, c.src_label, c.dst_label
        )
    )
    assert sorted(set(int(i) for i in ids)) == sorted(int(i) for i in ids)
    ref = DynamicGraph()
    ref_ids = [ref.add_edge(0, 1, 2, float(i), src_label=0, dst_label=1) for i in range(5)]
    assert [int(i) for i in ids] == ref_ids
    for a, b in zip(_graph_state(graph).values(), _graph_state(ref).values()):
        assert np.array_equal(a, b)


def test_recycled_id_delete_then_reinsert():
    """Deleting then reinserting from the same source reuses ids LIFO."""
    def build():
        g = DynamicGraph()
        seed = [StreamEvent.insert(0, v, 0, float(v), 0, v % 2) for v in (1, 2, 3)]
        c = _columns(EventKind.INSERT, seed)
        first = [int(i) for i in g.apply_insert_columns(
            c.src, c.dst, c.label, c.timestamp, c.src_label, c.dst_label)]
        return g, first

    col, first = build()
    # free two ids (same source), newest-first reinsert should pop LIFO
    col.apply_delete_columns([first[0], first[2]])
    re_events = [StreamEvent.insert(0, 4, 1, 9.0, 0, 0),
                 StreamEvent.insert(0, 5, 1, 9.0, 0, 1)]
    rc = _columns(EventKind.INSERT, re_events)
    recycled = [int(i) for i in col.apply_insert_columns(
        rc.src, rc.dst, rc.label, rc.timestamp, rc.src_label, rc.dst_label)]

    ref, ref_first = build()
    assert ref_first == first
    ref.delete_edge(first[0])
    ref.delete_edge(first[2])
    ref_recycled = [ref.add_edge(0, 4, 1, 9.0, src_label=0, dst_label=0),
                    ref.add_edge(0, 5, 1, 9.0, src_label=0, dst_label=1)]
    assert recycled == ref_recycled
    assert set(recycled) == {first[0], first[2]}
    for a, b in zip(_graph_state(col).values(), _graph_state(ref).values()):
        assert np.array_equal(a, b)


def test_empty_batches():
    """Empty column batches are no-ops everywhere on the path."""
    graph = DynamicGraph()
    empty = np.zeros(0, dtype=np.int64)
    assert list(graph.apply_insert_columns(empty, empty, empty, empty, empty, empty)) == []
    assert list(graph.apply_delete_columns([])) == []
    assert EventColumns.from_events(EventKind.INSERT, []) is not None or True

    query = QueryGraph.from_edges([(0, 1)], node_labels={0: 0, 1: 1})
    engine = MnemonicEngine(query, config=EngineConfig(ingest="columnar"))
    try:
        snap = engine.batch_inserts([])
        assert snap.num_positive == 0 and snap.num_insertions == 0
    finally:
        engine.close()


def test_ingest_knob_validated():
    with pytest.raises(ConfigurationError):
        EngineConfig(ingest="nope")


# ---------------------------------------------------------------------- publish regimes
def _publish_round_trip(seed, num_batches=24, batch=24, interloper_at=None):
    """Random mutate/publish loop; every published slot must equal a
    fresh full export.  Returns (full_publishes, dirty_publishes)."""
    rng = random.Random(seed)
    q = QueryGraph.from_edges(
        [(0, 1), (1, 2), (1, 3)], node_labels={0: 0, 1: 1, 2: 2, 3: 0}
    )
    tree = QueryTree(q, root=0)
    graph = DynamicGraph()
    debi = DEBI(tree)
    writer = SharedSnapshotWriter(num_slots=2)
    attach = SnapshotAttachment()
    live = []
    try:
        for b in range(num_batches):
            batch_ids = []
            for _ in range(batch):
                s = rng.randrange(0, 40)
                d = rng.randrange(0, 40)
                eid = graph.add_edge(s, d, rng.randrange(3), float(b),
                                     src_label=s % 3, dst_label=d % 3)
                live.append(eid)
                batch_ids.append(eid)
                for col in range(tree.num_columns):
                    if rng.random() < 0.4:
                        debi.set(eid, col)
                if rng.random() < 0.3:
                    debi.set_root(s)
            if b and rng.random() < 0.3:
                for _ in range(min(6, len(live))):
                    eid = live.pop(rng.randrange(len(live)))
                    graph.delete_edge(eid)
                    debi.clear_edge(eid)
            if interloper_at is not None and b == interloper_at:
                graph.export_csr()  # breaks the export chain: full copy
            desc = writer.publish(graph, debi, set(batch_ids), positive=True)

            ref = dict(graph.export_csr().arrays())
            ref_debi = debi.export_buffers()
            ref["debi_rows_0"] = ref_debi["rows"]
            ref["debi_roots_0"] = ref_debi["roots"]
            buf = attach._segment(desc["name"]).buf
            for key, (dtype, shape, off) in desc["layout"].items():
                view = np.ndarray(shape, dtype=dtype, buffer=buf, offset=off)
                if key == "batch_edges":
                    assert set(view.tolist()) == set(batch_ids)
                    continue
                assert np.array_equal(view, ref[key]), (seed, b, key)
    finally:
        attach.detach()
        writer.close()
    return writer.full_publishes, writer.dirty_publishes


def test_dirty_slice_publish_byte_parity():
    full = dirty = 0
    for seed in (0, 1):
        f, d = _publish_round_trip(seed)
        full += f
        dirty += d
    # both regimes exercised; dirty-slice must carry the steady state
    assert full >= 2  # the first write of each slot is always a full copy
    assert dirty > full


def test_interloper_export_stays_correct():
    """An export the writer didn't perform breaks its dirty-tracking
    chain; the writer must detect it (via the graph's export count) and
    fall back to rewriting everything for that publication.  The
    byte-parity asserts inside the round trip prove no stale slice
    survives."""
    full, dirty = _publish_round_trip(7, interloper_at=10)
    assert full + dirty == 24  # every batch published despite the break
