"""Unit tests for the matching variants programmed on the Mnemonic API."""


from repro.core.api import DefaultMatchDefinition, MatchDefinition, default_edge_matcher
from repro.core.engine import MnemonicEngine, enumerate_static
from repro.graph.adjacency import DynamicGraph
from repro.matchers import (
    HomomorphismMatcher,
    IsomorphismMatcher,
    TemporalIsomorphismMatcher,
)
from repro.query.query_graph import WILDCARD_LABEL, QueryGraph
from repro.streams.events import StreamEvent
from tests.conftest import brute_force_node_maps, graph_from_tuples


class TestDefaultEdgeMatcher:
    def setup_method(self):
        self.graph = DynamicGraph()
        self.eid = self.graph.add_edge(1, 2, label=7, src_label=3, dst_label=4)
        self.record = self.graph.edge(self.eid)

    def test_exact_label_match(self):
        query = QueryGraph.from_edges([(0, 1, 7)], node_labels={0: 3, 1: 4})
        assert default_edge_matcher(query, self.graph, query.edge(0), self.record)

    def test_wildcards_match_anything(self):
        query = QueryGraph.from_edges([(0, 1)])
        assert default_edge_matcher(query, self.graph, query.edge(0), self.record)

    def test_node_label_mismatch(self):
        query = QueryGraph.from_edges([(0, 1, 7)], node_labels={0: 9, 1: 4})
        assert not default_edge_matcher(query, self.graph, query.edge(0), self.record)

    def test_edge_label_mismatch(self):
        query = QueryGraph.from_edges([(0, 1, 8)], node_labels={0: 3, 1: 4})
        assert not default_edge_matcher(query, self.graph, query.edge(0), self.record)

    def test_direction_matters(self):
        query = QueryGraph.from_edges([(0, 1, 7)], node_labels={0: 4, 1: 3})
        assert not default_edge_matcher(query, self.graph, query.edge(0), self.record)

    def test_root_matcher(self):
        match_def = DefaultMatchDefinition()
        query = QueryGraph.from_edges([(0, 1)], node_labels={0: 3, 1: WILDCARD_LABEL})
        assert match_def.root_matcher(query, self.graph, 0, 1)
        assert not match_def.root_matcher(query, self.graph, 0, 2)
        assert match_def.root_matcher(query, self.graph, 1, 2)  # wildcard


class TestIsoVsHomo:
    def _events(self):
        # A small diamond with a shared middle vertex.
        return [
            StreamEvent.insert(1, 2, src_label=0, dst_label=1),
            StreamEvent.insert(2, 3, src_label=1, dst_label=0),
            StreamEvent.insert(1, 4, src_label=0, dst_label=1),
            StreamEvent.insert(4, 3, src_label=1, dst_label=0),
            StreamEvent.insert(4, 1, src_label=1, dst_label=0),
        ]

    def _query(self):
        return QueryGraph.from_edges([(0, 1), (1, 2)], node_labels={0: 0, 1: 1, 2: 0})

    def test_matcher_flags(self):
        assert IsomorphismMatcher().injective
        assert not HomomorphismMatcher().injective
        assert IsomorphismMatcher().name == "isomorphism"
        assert HomomorphismMatcher().name == "homomorphism"

    def test_homomorphism_is_superset_of_isomorphism(self):
        events = self._events()
        query = self._query()
        iso = {e.node_map for e in enumerate_static(query, events, match_def=IsomorphismMatcher())}
        homo = {e.node_map for e in enumerate_static(query, events, match_def=HomomorphismMatcher())}
        assert iso <= homo
        assert len(homo) > len(iso)

    def test_results_match_brute_force(self):
        events = self._events()
        query = self._query()
        graph = graph_from_tuples(
            [(e.src, e.dst, e.label) for e in events],
            vertex_labels={1: 0, 2: 1, 3: 0, 4: 1},
        )
        iso = {e.node_map for e in enumerate_static(query, events, match_def=IsomorphismMatcher())}
        homo = {e.node_map for e in enumerate_static(query, events, match_def=HomomorphismMatcher())}
        assert iso == brute_force_node_maps(query, graph, injective=True)
        assert homo == brute_force_node_maps(query, graph, injective=False)


class TestTemporalIsomorphism:
    def _query(self):
        # 0 -> 1 must happen before 1 -> 2 (ranks 0 and 1).
        query = QueryGraph()
        query.add_node(0, 0)
        query.add_node(1, 1)
        query.add_node(2, 2)
        query.add_edge(0, 1, time_rank=0)
        query.add_edge(1, 2, time_rank=1)
        return query

    def test_respects_temporal_order(self):
        query = self._query()
        ordered = [
            StreamEvent.insert(10, 11, timestamp=1.0, src_label=0, dst_label=1),
            StreamEvent.insert(11, 12, timestamp=2.0, src_label=1, dst_label=2),
        ]
        reversed_ts = [
            StreamEvent.insert(10, 11, timestamp=5.0, src_label=0, dst_label=1),
            StreamEvent.insert(11, 12, timestamp=2.0, src_label=1, dst_label=2),
        ]
        matcher = TemporalIsomorphismMatcher()
        assert len(enumerate_static(query, ordered, match_def=matcher)) == 1
        assert len(enumerate_static(query, reversed_ts, match_def=matcher)) == 0
        # Plain isomorphism ignores timestamps entirely.
        assert len(enumerate_static(query, reversed_ts, match_def=IsomorphismMatcher())) == 1

    def test_strict_vs_non_strict_ties(self):
        query = self._query()
        tied = [
            StreamEvent.insert(10, 11, timestamp=3.0, src_label=0, dst_label=1),
            StreamEvent.insert(11, 12, timestamp=3.0, src_label=1, dst_label=2),
        ]
        assert len(enumerate_static(query, tied, match_def=TemporalIsomorphismMatcher())) == 1
        assert len(enumerate_static(query, tied,
                                    match_def=TemporalIsomorphismMatcher(strict=True))) == 0

    def test_unranked_edges_unconstrained(self):
        query = QueryGraph()
        query.add_node(0, 0)
        query.add_node(1, 1)
        query.add_node(2, 2)
        query.add_edge(0, 1, time_rank=0)
        query.add_edge(1, 2)  # no rank
        events = [
            StreamEvent.insert(10, 11, timestamp=9.0, src_label=0, dst_label=1),
            StreamEvent.insert(11, 12, timestamp=1.0, src_label=1, dst_label=2),
        ]
        assert len(enumerate_static(query, events, match_def=TemporalIsomorphismMatcher())) == 1

    def test_binds_witness_edges(self):
        matcher = TemporalIsomorphismMatcher()
        assert matcher.bind_witnesses
        query = self._query()
        events = [
            StreamEvent.insert(10, 11, timestamp=1.0, src_label=0, dst_label=1),
            StreamEvent.insert(11, 12, timestamp=2.0, src_label=1, dst_label=2),
        ]
        found = enumerate_static(query, events, match_def=matcher)
        assert set(found[0].edges()) == {0, 1}

    def test_incremental_temporal_stream(self):
        query = self._query()
        matcher = TemporalIsomorphismMatcher()
        engine = MnemonicEngine(query, match_def=matcher)
        first = engine.batch_inserts([
            StreamEvent.insert(10, 11, timestamp=5.0, src_label=0, dst_label=1)
        ])
        assert first.num_positive == 0
        second = engine.batch_inserts([
            StreamEvent.insert(11, 12, timestamp=6.0, src_label=1, dst_label=2)
        ])
        assert second.num_positive == 1
        # A later (1 -> 2) edge with an *earlier* timestamp cannot complete a match.
        third = engine.batch_inserts([
            StreamEvent.insert(11, 13, timestamp=1.0, src_label=1, dst_label=2)
        ])
        assert third.num_positive == 0


class TestCustomMatchDefinition:
    def test_attribute_based_matcher(self):
        """A user-defined matcher that also constrains the edge timestamp parity."""

        class EvenTimestampMatcher(MatchDefinition):
            name = "even-timestamps"
            injective = True

            def edge_matcher(self, query, graph, q_edge, d_edge):
                return default_edge_matcher(query, graph, q_edge, d_edge) and (
                    int(d_edge.timestamp) % 2 == 0
                )

        query = QueryGraph.from_edges([(0, 1), (1, 2)], node_labels={0: 0, 1: 1, 2: 2})
        events = [
            StreamEvent.insert(1, 2, timestamp=2.0, src_label=0, dst_label=1),
            StreamEvent.insert(2, 3, timestamp=4.0, src_label=1, dst_label=2),
            StreamEvent.insert(2, 4, timestamp=3.0, src_label=1, dst_label=2),
        ]
        found = enumerate_static(query, events, match_def=EvenTimestampMatcher())
        assert {dict(e.node_map)[2] for e in found} == {3}
