"""Unit tests for stream events, configuration and snapshot generation."""

import pytest

from repro.streams.config import StreamConfig, StreamType
from repro.streams.events import (
    EventKind,
    StreamEvent,
    decode_lsbench_triple,
    encode_lsbench_triple,
)
from repro.streams.generator import SnapshotGenerator
from repro.streams.sources import IterableSource, ListSource
from repro.utils.validation import ConfigurationError


class TestEvents:
    def test_insert_delete_constructors(self):
        insert = StreamEvent.insert(1, 2, 3, 4.0, 5, 6)
        delete = StreamEvent.delete(1, 2, 3)
        assert insert.is_insert and not insert.is_delete
        assert delete.is_delete and not delete.is_insert
        assert insert.as_triple() == (1, 2, 3)
        assert insert.src_label == 5 and insert.dst_label == 6

    def test_lsbench_roundtrip(self):
        insert = StreamEvent.insert(0, 3, 7)
        delete = StreamEvent.delete(0, 3, 7)
        assert decode_lsbench_triple(encode_lsbench_triple(insert)) == insert
        decoded = decode_lsbench_triple(encode_lsbench_triple(delete))
        assert decoded.kind is EventKind.DELETE
        assert decoded.as_triple() == (0, 3, 7)

    def test_lsbench_malformed(self):
        with pytest.raises(ValueError):
            decode_lsbench_triple((-1, 3, 0))


class TestStreamConfig:
    def test_defaults(self):
        config = StreamConfig()
        assert config.stream_type is StreamType.INSERT_ONLY
        assert config.batch_size > 0

    def test_string_stream_type_coerced(self):
        config = StreamConfig(stream_type="insert_delete")
        assert config.stream_type is StreamType.INSERT_DELETE

    def test_sliding_window_requires_window_and_stride(self):
        with pytest.raises(ConfigurationError):
            StreamConfig(stream_type=StreamType.SLIDING_WINDOW)
        with pytest.raises(ConfigurationError):
            StreamConfig(stream_type=StreamType.SLIDING_WINDOW, window=10.0, stride=20.0)
        config = StreamConfig(stream_type=StreamType.SLIDING_WINDOW, window=10.0, stride=5.0)
        assert config.window == 10.0

    def test_invalid_batch_size(self):
        with pytest.raises(ConfigurationError):
            StreamConfig(batch_size=0)

    def test_invalid_in_memory_window(self):
        with pytest.raises(ConfigurationError):
            StreamConfig(in_memory_window=0)


class TestSources:
    def test_list_source_is_replayable(self):
        source = ListSource([StreamEvent.insert(1, 2)])
        assert len(source) == 1
        assert list(source) == list(source)

    def test_iterable_source_single_use(self):
        source = IterableSource(iter([StreamEvent.insert(1, 2)]))
        assert len(list(source)) == 1
        with pytest.raises(RuntimeError):
            iter(source)


class TestInsertOnlySnapshots:
    def test_batching(self):
        events = [StreamEvent.insert(i, i + 1) for i in range(10)]
        generator = SnapshotGenerator(ListSource(events), StreamConfig(batch_size=4))
        snapshots = generator.snapshots()
        assert [len(s.insertions) for s in snapshots] == [4, 4, 2]
        assert [s.number for s in snapshots] == [0, 1, 2]
        assert all(not s.deletions for s in snapshots)

    def test_rejects_deletions(self):
        events = [StreamEvent.delete(1, 2)]
        generator = SnapshotGenerator(ListSource(events), StreamConfig(batch_size=4))
        with pytest.raises(ConfigurationError):
            list(generator)

    def test_empty_stream(self):
        generator = SnapshotGenerator(ListSource([]), StreamConfig(batch_size=4))
        assert generator.snapshots() == []


class TestInsertDeleteSnapshots:
    def _config(self, batch_size=4):
        return StreamConfig(stream_type=StreamType.INSERT_DELETE, batch_size=batch_size)

    def test_mixed_batching(self):
        events = [
            StreamEvent.insert(1, 2),
            StreamEvent.insert(2, 3),
            StreamEvent.delete(1, 2),
            StreamEvent.insert(3, 4),
        ]
        snapshots = SnapshotGenerator(ListSource(events), self._config(batch_size=10)).snapshots()
        assert len(snapshots) == 1
        snap = snapshots[0]
        # The delete cancels the pending insert of (1, 2) inside the batch.
        assert [(e.src, e.dst) for e in snap.insertions] == [(2, 3), (3, 4)]
        assert snap.deletions == []

    def test_delete_of_older_edge_survives(self):
        events = [StreamEvent.insert(1, 2), StreamEvent.insert(2, 3)]
        later = [StreamEvent.delete(1, 2), StreamEvent.insert(4, 5)]
        snapshots = SnapshotGenerator(
            ListSource(events + later), self._config(batch_size=2)
        ).snapshots()
        assert len(snapshots) == 2
        assert [(e.src, e.dst) for e in snapshots[1].deletions] == [(1, 2)]

    def test_snapshot_is_empty_property(self):
        events = [StreamEvent.insert(1, 2)]
        snap = SnapshotGenerator(ListSource(events), self._config()).snapshots()[0]
        assert not snap.is_empty
        assert snap.insert_batch_size == 1
        assert snap.delete_batch_size == 0


class TestSlidingWindowSnapshots:
    def _config(self, window=10.0, stride=5.0, batch_size=100):
        return StreamConfig(stream_type=StreamType.SLIDING_WINDOW, window=window,
                            stride=stride, batch_size=batch_size)

    def test_window_expiry_generates_deletions(self):
        events = [StreamEvent.insert(i, i + 1, timestamp=float(t))
                  for i, t in enumerate([0, 1, 6, 12, 18])]
        snapshots = SnapshotGenerator(ListSource(events), self._config()).snapshots()
        # Strides end at t=5, 10, 15, 20 (first event at t=0 -> stride_end 5).
        all_deletes = [(e.src, e.dst) for s in snapshots for e in s.deletions]
        all_inserts = [(e.src, e.dst) for s in snapshots for e in s.insertions]
        assert all_inserts == [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]
        # Edges at t=0 and t=1 must have expired by the time the window is at 18.
        assert (0, 1) in all_deletes and (1, 2) in all_deletes
        # The most recent edge must not be deleted.
        assert (4, 5) not in all_deletes

    def test_deletions_reference_original_timestamps(self):
        events = [StreamEvent.insert(1, 2, timestamp=0.0),
                  StreamEvent.insert(3, 4, timestamp=30.0)]
        snapshots = SnapshotGenerator(ListSource(events), self._config()).snapshots()
        deletes = [e for s in snapshots for e in s.deletions]
        assert any(e.as_triple() == (1, 2, 0) and e.timestamp == 0.0 for e in deletes)

    def test_out_of_order_timestamps_rejected(self):
        events = [StreamEvent.insert(1, 2, timestamp=5.0),
                  StreamEvent.insert(2, 3, timestamp=1.0)]
        with pytest.raises(ConfigurationError):
            SnapshotGenerator(ListSource(events), self._config()).snapshots()

    def test_explicit_deletes_rejected(self):
        events = [StreamEvent.delete(1, 2, timestamp=0.0)]
        with pytest.raises(ConfigurationError):
            SnapshotGenerator(ListSource(events), self._config()).snapshots()

    def test_live_count_never_exceeds_window_span(self):
        events = [StreamEvent.insert(i, i + 1, timestamp=float(i)) for i in range(40)]
        snapshots = SnapshotGenerator(ListSource(events), self._config(window=8, stride=4)).snapshots()
        live = set()
        for snap in snapshots:
            for e in snap.insertions:
                live.add((e.src, e.dst))
            for e in snap.deletions:
                live.discard((e.src, e.dst))
            timestamps = [t for (s, d) in live for t in [s]]  # src == timestamp index here
            if timestamps:
                assert max(timestamps) - min(timestamps) <= 8
