"""Unit tests for stream events, configuration and snapshot generation."""

import pytest

from repro.streams.config import StreamConfig, StreamType
from repro.streams.events import (
    EventKind,
    StreamEvent,
    decode_lsbench_triple,
    encode_lsbench_triple,
)
from repro.streams.generator import SnapshotGenerator
from repro.streams.sources import IterableSource, ListSource
from repro.utils.validation import ConfigurationError


class TestEvents:
    def test_insert_delete_constructors(self):
        insert = StreamEvent.insert(1, 2, 3, 4.0, 5, 6)
        delete = StreamEvent.delete(1, 2, 3)
        assert insert.is_insert and not insert.is_delete
        assert delete.is_delete and not delete.is_insert
        assert insert.as_triple() == (1, 2, 3)
        assert insert.src_label == 5 and insert.dst_label == 6

    def test_lsbench_roundtrip(self):
        insert = StreamEvent.insert(0, 3, 7)
        delete = StreamEvent.delete(0, 3, 7)
        assert decode_lsbench_triple(encode_lsbench_triple(insert)) == insert
        decoded = decode_lsbench_triple(encode_lsbench_triple(delete))
        assert decoded.kind is EventKind.DELETE
        assert decoded.as_triple() == (0, 3, 7)

    def test_lsbench_malformed(self):
        with pytest.raises(ValueError):
            decode_lsbench_triple((-1, 3, 0))


class TestStreamConfig:
    def test_defaults(self):
        config = StreamConfig()
        assert config.stream_type is StreamType.INSERT_ONLY
        assert config.batch_size > 0

    def test_string_stream_type_coerced(self):
        config = StreamConfig(stream_type="insert_delete")
        assert config.stream_type is StreamType.INSERT_DELETE

    def test_sliding_window_requires_window_and_stride(self):
        with pytest.raises(ConfigurationError):
            StreamConfig(stream_type=StreamType.SLIDING_WINDOW)
        with pytest.raises(ConfigurationError):
            StreamConfig(stream_type=StreamType.SLIDING_WINDOW, window=10.0, stride=20.0)
        config = StreamConfig(stream_type=StreamType.SLIDING_WINDOW, window=10.0, stride=5.0)
        assert config.window == 10.0

    def test_invalid_batch_size(self):
        with pytest.raises(ConfigurationError):
            StreamConfig(batch_size=0)

    def test_invalid_in_memory_window(self):
        with pytest.raises(ConfigurationError):
            StreamConfig(in_memory_window=0)


class TestSources:
    def test_list_source_is_replayable(self):
        source = ListSource([StreamEvent.insert(1, 2)])
        assert len(source) == 1
        assert list(source) == list(source)

    def test_iterable_source_replays_generator(self):
        # Regression: a generator-backed source used to yield nothing on a
        # second pass (the generator was exhausted), so a re-run silently
        # processed an empty stream.  The first pass now materialises it.
        def trace():
            yield StreamEvent.insert(1, 2)
            yield StreamEvent.insert(2, 3)

        source = IterableSource(trace())
        first = list(source)
        assert len(first) == 2
        assert list(source) == first
        assert len(source) == 2

    def test_iterable_source_len_before_iteration(self):
        source = IterableSource(iter([StreamEvent.insert(1, 2)]))
        with pytest.raises(TypeError):
            len(source)


class TestInsertOnlySnapshots:
    def test_batching(self):
        events = [StreamEvent.insert(i, i + 1) for i in range(10)]
        generator = SnapshotGenerator(ListSource(events), StreamConfig(batch_size=4))
        snapshots = generator.snapshots()
        assert [len(s.insertions) for s in snapshots] == [4, 4, 2]
        assert [s.number for s in snapshots] == [0, 1, 2]
        assert all(not s.deletions for s in snapshots)

    def test_rejects_deletions(self):
        events = [StreamEvent.delete(1, 2)]
        generator = SnapshotGenerator(ListSource(events), StreamConfig(batch_size=4))
        with pytest.raises(ConfigurationError):
            list(generator)

    def test_empty_stream(self):
        generator = SnapshotGenerator(ListSource([]), StreamConfig(batch_size=4))
        assert generator.snapshots() == []


class TestInsertDeleteSnapshots:
    def _config(self, batch_size=4):
        return StreamConfig(stream_type=StreamType.INSERT_DELETE, batch_size=batch_size)

    def test_mixed_batching(self):
        events = [
            StreamEvent.insert(1, 2),
            StreamEvent.insert(2, 3),
            StreamEvent.delete(1, 2),
            StreamEvent.insert(3, 4),
        ]
        snapshots = SnapshotGenerator(ListSource(events), self._config(batch_size=10)).snapshots()
        assert len(snapshots) == 1
        snap = snapshots[0]
        # The delete cancels the pending insert of (1, 2) inside the batch.
        assert [(e.src, e.dst) for e in snap.insertions] == [(2, 3), (3, 4)]
        assert snap.deletions == []

    def test_delete_of_older_edge_survives(self):
        events = [StreamEvent.insert(1, 2), StreamEvent.insert(2, 3)]
        later = [StreamEvent.delete(1, 2), StreamEvent.insert(4, 5)]
        snapshots = SnapshotGenerator(
            ListSource(events + later), self._config(batch_size=2)
        ).snapshots()
        assert len(snapshots) == 2
        assert [(e.src, e.dst) for e in snapshots[1].deletions] == [(1, 2)]

    def test_snapshot_is_empty_property(self):
        events = [StreamEvent.insert(1, 2)]
        snap = SnapshotGenerator(ListSource(events), self._config()).snapshots()[0]
        assert not snap.is_empty
        assert snap.insert_batch_size == 1
        assert snap.delete_batch_size == 0


class TestSlidingWindowSnapshots:
    def _config(self, window=10.0, stride=5.0, batch_size=100):
        return StreamConfig(stream_type=StreamType.SLIDING_WINDOW, window=window,
                            stride=stride, batch_size=batch_size)

    def test_window_expiry_generates_deletions(self):
        events = [StreamEvent.insert(i, i + 1, timestamp=float(t))
                  for i, t in enumerate([0, 1, 6, 12, 18])]
        snapshots = SnapshotGenerator(ListSource(events), self._config()).snapshots()
        # Strides end at t=5, 10, 15, 20 (first event at t=0 -> stride_end 5).
        all_deletes = [(e.src, e.dst) for s in snapshots for e in s.deletions]
        all_inserts = [(e.src, e.dst) for s in snapshots for e in s.insertions]
        assert all_inserts == [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]
        # Edges at t=0 and t=1 must have expired by the time the window is at 18.
        assert (0, 1) in all_deletes and (1, 2) in all_deletes
        # The most recent edge must not be deleted.
        assert (4, 5) not in all_deletes

    def test_deletions_reference_original_timestamps(self):
        events = [StreamEvent.insert(1, 2, timestamp=0.0),
                  StreamEvent.insert(3, 4, timestamp=30.0)]
        snapshots = SnapshotGenerator(ListSource(events), self._config()).snapshots()
        deletes = [e for s in snapshots for e in s.deletions]
        assert any(e.as_triple() == (1, 2, 0) and e.timestamp == 0.0 for e in deletes)

    def test_out_of_order_timestamps_rejected(self):
        events = [StreamEvent.insert(1, 2, timestamp=5.0),
                  StreamEvent.insert(2, 3, timestamp=1.0)]
        with pytest.raises(ConfigurationError):
            SnapshotGenerator(ListSource(events), self._config()).snapshots()

    def test_explicit_deletes_rejected(self):
        events = [StreamEvent.delete(1, 2, timestamp=0.0)]
        with pytest.raises(ConfigurationError):
            SnapshotGenerator(ListSource(events), self._config()).snapshots()

    def test_live_count_never_exceeds_window_span(self):
        events = [StreamEvent.insert(i, i + 1, timestamp=float(i)) for i in range(40)]
        snapshots = SnapshotGenerator(ListSource(events), self._config(window=8, stride=4)).snapshots()
        live = set()
        for snap in snapshots:
            for e in snap.insertions:
                live.add((e.src, e.dst))
            for e in snap.deletions:
                live.discard((e.src, e.dst))
            timestamps = [t for (s, d) in live for t in [s]]  # src == timestamp index here
            if timestamps:
                assert max(timestamps) - min(timestamps) <= 8

    # ------------------------------------------------------------------ edge cases
    def test_stride_larger_than_window_rejected(self):
        # A stride beyond the window would skip time spans entirely: edges
        # inserted and expired inside the gap would never be reported.
        with pytest.raises(ConfigurationError):
            StreamConfig(stream_type=StreamType.SLIDING_WINDOW, window=5.0, stride=5.1)
        # The boundary case stride == window is a tumbling window: legal.
        config = StreamConfig(stream_type=StreamType.SLIDING_WINDOW, window=5.0, stride=5.0)
        assert config.stride == config.window

    def test_out_of_order_rejection_is_strict_not_equal(self):
        # Equal timestamps are fine (non-decreasing); only regressions fail.
        ok = [StreamEvent.insert(1, 2, timestamp=3.0),
              StreamEvent.insert(2, 3, timestamp=3.0)]
        snapshots = SnapshotGenerator(ListSource(ok), self._config()).snapshots()
        assert sum(s.insert_batch_size for s in snapshots) == 2
        bad = ok + [StreamEvent.insert(3, 4, timestamp=2.999)]
        with pytest.raises(ConfigurationError) as excinfo:
            SnapshotGenerator(ListSource(bad), self._config()).snapshots()
        assert "non-decreasing" in str(excinfo.value)

    def test_empty_strides_between_sparse_events_still_advance_window(self):
        # Events at t=0 and t=26 with stride 5: the quiet strides in
        # between must still produce snapshots (their expiry deletions
        # keep the engine's live set honest), numbered contiguously.
        events = [StreamEvent.insert(1, 2, timestamp=0.0),
                  StreamEvent.insert(3, 4, timestamp=26.0)]
        snapshots = SnapshotGenerator(ListSource(events), self._config()).snapshots()
        # Strides end at 5, 10, 15, 20, 25 and the trailing flush at 30.
        assert [s.number for s in snapshots] == [0, 1, 2, 3, 4, 5]
        assert [s.watermark for s in snapshots] == [5.0, 10.0, 15.0, 20.0, 25.0, 30.0]
        assert [s.insert_batch_size for s in snapshots] == [1, 0, 0, 0, 0, 1]
        # The t=0 edge (window 10, inclusive low edge) expires in the
        # stride ending at 10, i.e. as soon as timestamp <= upper - window.
        expiry_by_snapshot = [[(e.src, e.dst) for e in s.deletions] for s in snapshots]
        assert expiry_by_snapshot == [[], [(1, 2)], [], [], [], []]

    def test_trailing_partial_stride_is_flushed(self):
        # Events that never reach the next stride boundary must still be
        # emitted by a final partial-stride snapshot, with expiries for
        # anything their window position pushes out.
        events = [StreamEvent.insert(1, 2, timestamp=0.0),
                  StreamEvent.insert(2, 3, timestamp=6.0),
                  StreamEvent.insert(3, 4, timestamp=7.0)]
        snapshots = SnapshotGenerator(ListSource(events), self._config()).snapshots()
        assert len(snapshots) == 2
        trailing = snapshots[1]
        assert [(e.src, e.dst) for e in trailing.insertions] == [(2, 3), (3, 4)]
        assert trailing.watermark == 10.0  # the partial stride's nominal end
        # The t=0 edge sits exactly on the (inclusive) low edge at
        # upper=10: the trailing flush also reports its expiry.
        assert [(e.src, e.dst) for e in trailing.deletions] == [(1, 2)]

    def test_trailing_event_older_than_its_own_window_expires_immediately(self):
        # An insert whose timestamp has already slid out by the stride it
        # lands in is reported and immediately expired in that snapshot.
        events = [StreamEvent.insert(1, 2, timestamp=0.0),
                  StreamEvent.insert(2, 3, timestamp=14.0),
                  StreamEvent.insert(3, 4, timestamp=14.5)]
        snapshots = SnapshotGenerator(
            ListSource(events), self._config(window=2.0, stride=2.0)
        ).snapshots()
        flat_deletes = [(e.src, e.dst) for s in snapshots for e in s.deletions]
        assert (1, 2) in flat_deletes
        last = snapshots[-1]
        assert [(e.src, e.dst) for e in last.insertions] == [(2, 3), (3, 4)]
        # upper = 16, low = 14: the t=14 insert is already out of window.
        assert [(e.src, e.dst) for e in last.deletions] == [(2, 3)]

    def test_single_event_stream_flushes_one_snapshot(self):
        events = [StreamEvent.insert(1, 2, timestamp=3.0)]
        snapshots = SnapshotGenerator(ListSource(events), self._config()).snapshots()
        assert len(snapshots) == 1
        assert snapshots[0].insert_batch_size == 1
        assert snapshots[0].watermark == 8.0  # first stride ends at ts + stride


class TestAdaptiveBatching:
    def _config(self, batch_size=4, max_batch_delay=None, stream_type=StreamType.INSERT_ONLY):
        return StreamConfig(stream_type=stream_type, batch_size=batch_size,
                            max_batch_delay=max_batch_delay)

    def test_max_batch_delay_validation(self):
        with pytest.raises(ConfigurationError):
            StreamConfig(max_batch_delay=0.0)
        with pytest.raises(ConfigurationError):
            StreamConfig(stream_type=StreamType.SLIDING_WINDOW, window=5.0,
                         stride=1.0, max_batch_delay=1.0)
        assert StreamConfig(max_batch_delay=0.5).max_batch_delay == 0.5

    def test_max_batch_size_alias(self):
        assert StreamConfig(batch_size=7).max_batch_size == 7

    def test_delay_splits_batches_on_event_time_gaps(self):
        events = [StreamEvent.insert(i, i + 1, timestamp=ts)
                  for i, ts in enumerate([0.0, 0.1, 0.2, 3.0, 3.1, 9.0])]
        snapshots = SnapshotGenerator(
            ListSource(events), self._config(batch_size=100, max_batch_delay=1.0)
        ).snapshots()
        assert [s.insert_batch_size for s in snapshots] == [3, 2, 1]
        assert [s.first_arrival for s in snapshots] == [0.0, 3.0, 9.0]
        assert [s.number for s in snapshots] == [0, 1, 2]

    def test_size_cap_still_applies_with_delay(self):
        events = [StreamEvent.insert(i, i + 1, timestamp=0.0) for i in range(5)]
        snapshots = SnapshotGenerator(
            ListSource(events), self._config(batch_size=2, max_batch_delay=100.0)
        ).snapshots()
        assert [s.insert_batch_size for s in snapshots] == [2, 2, 1]

    def test_insert_delete_cancellation_respects_adaptive_boundaries(self):
        # The delete arrives 2s after the batch opened: the batch seals
        # first, so the insert is NOT cancelled — both survive as a real
        # insert + a real delete, exactly like a size-driven split.
        events = [
            StreamEvent.insert(1, 2, timestamp=0.0),
            StreamEvent.delete(1, 2, timestamp=2.0),
        ]
        snapshots = SnapshotGenerator(
            ListSource(events),
            self._config(batch_size=100, max_batch_delay=1.0,
                         stream_type=StreamType.INSERT_DELETE),
        ).snapshots()
        assert len(snapshots) == 2
        assert snapshots[0].insert_batch_size == 1
        assert snapshots[1].delete_batch_size == 1

    def test_delay_none_keeps_arrival_stamps_but_fixed_boundaries(self):
        events = [StreamEvent.insert(i, i + 1, timestamp=float(i)) for i in range(5)]
        snapshots = SnapshotGenerator(
            ListSource(events), self._config(batch_size=2)
        ).snapshots()
        assert [s.insert_batch_size for s in snapshots] == [2, 2, 1]
        assert [s.first_arrival for s in snapshots] == [0.0, 2.0, 4.0]
        assert [s.sealed_at for s in snapshots] == [1.0, 3.0, 4.0]
