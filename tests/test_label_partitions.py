"""Property-style tests for the label-partitioned adjacency layout.

The per-``(vertex, direction, label)`` partitions added for the
vectorized candidate pipeline must stay consistent with every other
graph structure through arbitrary interleavings of insertions and
deletions with edge-id recycling: the combined adjacency lists,
``find_edges``, the O(1) label degrees, :class:`PlaceholderStats`, and
the label-partitioned CSR mirror that pool workers enumerate over.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.core.api import DefaultMatchDefinition
from repro.core.engine import MnemonicEngine
from repro.graph.adjacency import CSRGraphView, DynamicGraph, IntVector
from repro.query.query_graph import QueryGraph
from repro.streams.events import StreamEvent

NUM_VERTICES = 12
NUM_LABELS = 4


def random_mutation_sequence(seed: int, steps: int):
    """Yield a reproducible interleaving of insert/delete operations."""
    rng = random.Random(seed)
    graph = DynamicGraph(recycle_edge_ids=True)
    live: list[tuple[int, int, int, int]] = []  # (edge_id, src, dst, label)
    for step in range(steps):
        if live and rng.random() < 0.4:
            edge_id, src, dst, label = live.pop(rng.randrange(len(live)))
            graph.delete_edge(edge_id)
        else:
            src = rng.randrange(NUM_VERTICES)
            dst = rng.randrange(NUM_VERTICES)
            label = rng.randrange(NUM_LABELS)
            edge_id = graph.add_edge(src, dst, label, timestamp=float(step))
            live.append((edge_id, src, dst, label))
    return graph, live


def check_partition_invariants(graph: DynamicGraph, live: list[tuple[int, int, int, int]]):
    """Partitions must agree with the combined lists, degrees and find_edges."""
    by_src: dict[int, list[tuple[int, int]]] = {}
    by_dst: dict[int, list[tuple[int, int]]] = {}
    for edge_id, src, dst, label in live:
        by_src.setdefault(src, []).append((edge_id, label))
        by_dst.setdefault(dst, []).append((edge_id, label))

    for vertex in graph.vertices():
        expected_out = by_src.get(vertex, [])
        expected_in = by_dst.get(vertex, [])
        # Combined lists: same edge multiset as the ground truth.
        assert Counter(graph.out_edges(vertex)) == Counter(e for e, _ in expected_out)
        assert Counter(graph.in_edges(vertex)) == Counter(e for e, _ in expected_in)
        for label in range(NUM_LABELS):
            out_part = graph.out_edges_with_label(vertex, label).tolist()
            in_part = graph.in_edges_with_label(vertex, label).tolist()
            # Partition contents = the label-filtered slice of the truth.
            assert Counter(out_part) == Counter(e for e, lab in expected_out if lab == label)
            assert Counter(in_part) == Counter(e for e, lab in expected_in if lab == label)
            # O(1) label degrees come from partition sizes.
            assert graph.out_label_degree(vertex, label) == len(out_part)
            assert graph.in_label_degree(vertex, label) == len(in_part)
            # Every partition member resolves through find_edges.
            for edge_id in out_part:
                record = graph.edge(edge_id)
                assert record.label == label and record.src == vertex
                assert edge_id in graph.find_edges(record.src, record.dst, label)


class TestPartitionInvariants:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_interleaving_keeps_partitions_consistent(self, seed):
        graph, live = random_mutation_sequence(seed, steps=300)
        check_partition_invariants(graph, live)
        assert graph.num_edges == len(live)

    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_recycling_reuses_rows_without_corrupting_partitions(self, seed):
        graph, live = random_mutation_sequence(seed, steps=400)
        # Recycling bounds placeholders: strictly fewer slots than total inserts.
        assert graph.num_placeholders < graph.stats.inserts
        assert graph.stats.recycled > 0, "sequence long enough to recycle ids"
        check_partition_invariants(graph, live)

    def test_placeholder_stats_track_live_and_slots(self):
        graph, live = random_mutation_sequence(11, steps=200)
        assert graph.num_edges == len(live)
        assert graph.stats.inserts - graph.stats.deletes == graph.num_edges
        assert graph.stats.peak_placeholders == graph.num_placeholders
        assert graph.stats.recycled == graph.stats.inserts - graph.num_placeholders

    def test_empty_partitions_read_as_empty(self):
        graph = DynamicGraph()
        eid = graph.add_edge(1, 2, label=3)
        graph.delete_edge(eid)
        assert graph.out_edges_with_label(1, 3).tolist() == []
        assert graph.out_label_degree(1, 3) == 0
        assert graph.candidate_pool(1, out=True, label=3).tolist() == []
        # Unknown vertex / label never allocated.
        assert graph.out_edges_with_label(99, 0).tolist() == []
        assert graph.in_label_degree(99, 0) == 0


class TestIntVector:
    def test_append_grow_and_swap_pop(self):
        vec = IntVector(capacity=2)
        for i in range(20):
            vec.append(i)
        assert len(vec) == 20
        assert vec.tolist() == list(range(20))
        assert vec.swap_pop(5)
        assert not vec.swap_pop(5)
        assert len(vec) == 19
        assert set(vec.tolist()) == set(range(20)) - {5}


class TestCSRViewParity:
    @pytest.mark.parametrize("seed", [21, 22, 23])
    def test_label_pools_and_degrees_match_live_graph(self, seed):
        graph, _ = random_mutation_sequence(seed, steps=300)
        view = CSRGraphView(graph.export_csr())
        for vertex in graph.vertices():
            # Combined pools: identical order (wildcard enumeration parity).
            assert view.out_edges(vertex) == graph.out_edges(vertex)
            assert view.in_edges(vertex) == graph.in_edges(vertex)
            for label in range(NUM_LABELS):
                # Labelled pools: identical order (partition enumeration parity).
                assert (
                    view.out_edges_with_label(vertex, label).tolist()
                    == graph.out_edges_with_label(vertex, label).tolist()
                )
                assert (
                    view.in_edges_with_label(vertex, label).tolist()
                    == graph.in_edges_with_label(vertex, label).tolist()
                )
                assert view.out_label_degree(vertex, label) == graph.out_label_degree(vertex, label)
                assert view.in_label_degree(vertex, label) == graph.in_label_degree(vertex, label)
                for out in (True, False):
                    live_pool = graph.candidate_pool(vertex, out, label)
                    view_pool = view.candidate_pool(vertex, out, label)
                    assert live_pool.tolist() == view_pool.tolist()

    def test_endpoint_gather_matches_records(self):
        graph, live = random_mutation_sequence(31, steps=200)
        view = CSRGraphView(graph.export_csr())
        import numpy as np

        ids = np.array([e for e, *_ in live], dtype=np.int64)
        for take_dst in (True, False):
            from_graph = graph.endpoint_array(ids, take_dst).tolist()
            from_view = view.endpoint_array(ids, take_dst).tolist()
            expected = [
                (graph.edge(e).dst if take_dst else graph.edge(e).src) for e in ids.tolist()
            ]
            assert from_graph == expected
            assert from_view == expected
            assert graph.endpoint_list(ids.tolist(), take_dst) == expected
            assert view.endpoint_list(ids.tolist(), take_dst) == expected


class UnpartitionedIsomorphism(DefaultMatchDefinition):
    """The default matcher with label-partition narrowing disabled."""

    name = "isomorphism-unpartitioned"
    label_partitioned = False


class TestEnumerationParity:
    def _labelled_workload(self, seed: int):
        rng = random.Random(seed)
        query = QueryGraph.from_edges(
            [(0, 1, 1), (1, 2, 2), (1, 3, 1)], node_labels={0: 0, 1: 0, 2: 0, 3: 0}
        )
        events = []
        for step in range(300):
            src = rng.randrange(25)
            dst = rng.randrange(25)
            label = rng.randrange(3)
            events.append(StreamEvent.insert(src, dst, label, timestamp=float(step)))
        return query, events

    @pytest.mark.parametrize("seed", [41, 42])
    def test_partitioned_matches_unpartitioned_and_scans_less(self, seed):
        """Label narrowing changes what is scanned, never what is found."""
        query, events = self._labelled_workload(seed)

        def run(match_def):
            with MnemonicEngine(query, match_def=match_def) as engine:
                scanned = 0
                found = set()
                for i in range(0, len(events), 50):
                    result = engine.batch_inserts(events[i : i + 50])
                    scanned += result.candidates_scanned
                    found |= {e.identity() for e in result.positive_embeddings}
                return scanned, found

        part_scanned, part_found = run(DefaultMatchDefinition())
        flat_scanned, flat_found = run(UnpartitionedIsomorphism())
        assert part_found == flat_found
        assert part_scanned <= flat_scanned
