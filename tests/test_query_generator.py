"""Unit tests for random query extraction from a data graph."""

import pytest

from repro.datasets import NetFlowConfig, generate_netflow_stream, graph_from_events
from repro.query.generator import QueryGenerator, QueryWorkload
from repro.query.query_graph import QueryGraph
from repro.utils.validation import QueryError


@pytest.fixture(scope="module")
def sample_graph():
    stream = generate_netflow_stream(NetFlowConfig(num_events=1500, num_hosts=120, seed=3))
    return graph_from_events(stream)


class TestQueryGenerator:
    def test_tree_query_shape(self, sample_graph):
        generator = QueryGenerator(sample_graph, seed=1)
        query = generator.tree_query(5)
        query.validate()
        assert query.num_nodes == 5
        assert query.num_edges == 4
        assert query.is_tree()

    def test_graph_query_has_cycle(self, sample_graph):
        generator = QueryGenerator(sample_graph, seed=2)
        query = generator.graph_query(5)
        query.validate()
        assert query.num_nodes == 5
        assert query.num_edges >= 5

    def test_queries_have_embeddings_in_source_graph(self, sample_graph):
        from repro.baselines import CECIMatcher

        generator = QueryGenerator(sample_graph, seed=4)
        query = generator.tree_query(3)
        matches = CECIMatcher(query).match(sample_graph)
        assert len(matches) >= 1

    def test_determinism(self, sample_graph):
        q1 = QueryGenerator(sample_graph, seed=9).tree_query(4)
        q2 = QueryGenerator(sample_graph, seed=9).tree_query(4)
        assert [e.endpoints() for e in q1.edges()] == [e.endpoints() for e in q2.edges()]
        assert [q1.node_label(u) for u in q1.nodes()] == [q2.node_label(u) for u in q2.nodes()]

    def test_timestamp_ranks(self, sample_graph):
        generator = QueryGenerator(sample_graph, seed=5)
        query = generator.tree_query(4, with_timestamps=True)
        ranks = [e.time_rank for e in query.edges()]
        assert all(rank is not None for rank in ranks)
        assert sorted(ranks) == list(range(len(ranks)))

    def test_too_small_query_rejected(self, sample_graph):
        generator = QueryGenerator(sample_graph, seed=0)
        with pytest.raises(QueryError):
            generator.tree_query(1)

    def test_empty_graph_rejected(self):
        from repro.graph.adjacency import DynamicGraph

        with pytest.raises(QueryError):
            QueryGenerator(DynamicGraph())

    def test_impossible_size_raises(self):
        from repro.graph.adjacency import DynamicGraph

        graph = DynamicGraph()
        graph.add_edge(0, 1)
        generator = QueryGenerator(graph, seed=0)
        with pytest.raises(QueryError):
            generator.tree_query(10, max_attempts=5)

    def test_workload_suites(self, sample_graph):
        generator = QueryGenerator(sample_graph, seed=6)
        workload = generator.workload(tree_sizes=(3, 4), graph_sizes=(4,), queries_per_suite=2)
        assert set(workload.suite_names()) == {"T_3", "T_4", "G_4"}
        assert workload.total() == 6
        assert len(workload.queries("T_3")) == 2
        assert len(list(workload)) == 6


class TestQueryWorkload:
    def test_add_and_lookup(self):
        workload = QueryWorkload()
        query = QueryGraph.from_edges([(0, 1)])
        workload.add("T_2", query)
        assert workload.queries("T_2") == [query]
        assert workload.queries("missing") == []
        assert workload.total() == 1
