"""Unit and cross-check tests for the baseline systems (CECI, TurboFlux, BigJoin, Li et al.)."""

import pytest

from repro.baselines import BigJoinMatcher, CECIMatcher, LiTCSMatcher, TurboFluxMatcher
from repro.core.engine import MnemonicEngine, enumerate_static
from repro.datasets import NetFlowConfig, generate_netflow_stream, graph_from_events
from repro.matchers import HomomorphismMatcher, IsomorphismMatcher, TemporalIsomorphismMatcher
from repro.query.generator import QueryGenerator
from repro.query.query_graph import QueryGraph
from repro.streams.events import StreamEvent
from repro.utils.validation import GraphError, QueryError
from tests.conftest import brute_force_node_maps


@pytest.fixture(scope="module")
def workload():
    """A small simple-graph stream (no parallel edges) plus extracted queries."""
    stream = generate_netflow_stream(NetFlowConfig(num_events=500, num_hosts=40, seed=21,
                                                   repeat_probability=0.0))
    seen = set()
    events = []
    for e in stream:
        if (e.src, e.dst, e.label) in seen:
            continue
        seen.add((e.src, e.dst, e.label))
        events.append(e)
    graph = graph_from_events(events)
    generator = QueryGenerator(graph, seed=5)
    queries = [generator.tree_query(3), generator.tree_query(4), generator.graph_query(4)]
    return events, graph, queries


class TestCECI:
    def test_matches_reference(self, workload):
        events, graph, queries = workload
        for query in queries:
            expected = {e.node_map for e in enumerate_static(query, events)}
            assert CECIMatcher(query).match_node_maps(graph) == expected

    def test_stats_populated(self, workload):
        events, graph, queries = workload
        matcher = CECIMatcher(queries[0])
        matcher.match(graph)
        assert matcher.stats.index_entries > 0
        assert matcher.stats.build_seconds >= 0
        assert matcher.stats.filter_passes >= 2

    def test_homomorphism_mode(self, workload):
        events, graph, queries = workload
        query = queries[0]
        iso = CECIMatcher(query, match_def=IsomorphismMatcher()).match_node_maps(graph)
        homo = CECIMatcher(query, match_def=HomomorphismMatcher()).match_node_maps(graph)
        assert iso <= homo

    def test_empty_graph(self):
        from repro.graph.adjacency import DynamicGraph

        query = QueryGraph.from_edges([(0, 1)])
        assert CECIMatcher(query).match(DynamicGraph()) == []


class TestTurboFlux:
    def test_incremental_matches_reference(self, workload):
        events, graph, queries = workload
        for query in queries:
            expected = {e.node_map for e in enumerate_static(query, events)}
            matcher = TurboFluxMatcher(query)
            found = set()
            for e in events:
                for emb in matcher.insert_edge(e.src, e.dst, e.label, e.src_label, e.dst_label):
                    found.add(emb.node_map)
            assert found == expected

    def test_deletions_report_destroyed_embeddings(self):
        query = QueryGraph.from_edges([(0, 1), (1, 2)], node_labels={0: 0, 1: 1, 2: 2})
        matcher = TurboFluxMatcher(query)
        matcher.insert_edge(1, 2, 0, 0, 1)
        created = matcher.insert_edge(2, 3, 0, 1, 2)
        assert len(created) == 1
        destroyed = matcher.delete_edge(1, 2, 0)
        assert len(destroyed) == 1
        assert destroyed[0].node_map == created[0].node_map
        assert not destroyed[0].positive

    def test_collapsed_multi_edges_suppress_duplicates(self):
        query = QueryGraph.from_edges([(0, 1), (1, 2)], node_labels={0: 0, 1: 1, 2: 2})
        matcher = TurboFluxMatcher(query)
        matcher.insert_edge(1, 2, 0, 0, 1)
        matcher.insert_edge(2, 3, 0, 1, 2)
        # A second instance of the same flow is *not* a new embedding for TurboFlux.
        again = matcher.insert_edge(1, 2, 0, 0, 1)
        assert again == []
        assert matcher.stats.suppressed_duplicates == 1
        # Deleting one instance keeps the collapsed edge alive.
        assert matcher.delete_edge(1, 2, 0) == []
        assert len(matcher.delete_edge(1, 2, 0)) == 1

    def test_delete_unknown_edge_rejected(self):
        query = QueryGraph.from_edges([(0, 1)])
        with pytest.raises(GraphError):
            TurboFluxMatcher(query).delete_edge(1, 2, 0)

    def test_traversal_counter_grows_per_edge(self, workload):
        events, graph, queries = workload
        matcher = TurboFluxMatcher(queries[0])
        for e in events[:50]:
            matcher.insert_edge(e.src, e.dst, e.label, e.src_label, e.dst_label)
        assert matcher.stats.edges_processed == 50
        assert matcher.stats.traversed_edges > 0
        assert matcher.state_size() >= 0


class TestBigJoin:
    def test_matches_reference_homomorphism(self, workload):
        events, graph, queries = workload
        tuples = [(e.src, e.dst, e.label, e.timestamp, e.src_label, e.dst_label) for e in events]
        for query in queries:
            expected = {e.node_map
                        for e in enumerate_static(query, events, match_def=HomomorphismMatcher())}
            matcher = BigJoinMatcher(query, match_def=HomomorphismMatcher())
            found = {e.node_map for e in matcher.insert_batch(tuples)}
            assert found == expected

    def test_batched_insertion_misses_nothing(self, workload):
        events, graph, queries = workload
        query = queries[0]
        tuples = [(e.src, e.dst, e.label, e.timestamp, e.src_label, e.dst_label) for e in events]
        expected = {e.node_map
                    for e in enumerate_static(query, events, match_def=HomomorphismMatcher())}
        matcher = BigJoinMatcher(query, match_def=HomomorphismMatcher())
        found = set()
        for i in range(0, len(tuples), 37):
            found |= {e.node_map for e in matcher.insert_batch(tuples[i:i + 37])}
        assert found == expected

    def test_join_order_covers_all_nodes(self):
        query = QueryGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        matcher = BigJoinMatcher(query)
        assert sorted(matcher._node_order) == sorted(query.nodes())

    def test_stats_track_intermediate_results(self):
        query = QueryGraph.from_edges([(0, 1), (1, 2)])
        matcher = BigJoinMatcher(query, match_def=HomomorphismMatcher())
        matcher.insert_batch([(1, 2, 0), (2, 3, 0), (3, 4, 0)])
        assert matcher.stats.deltas_processed > 0
        assert matcher.stats.intersections > 0


class TestLiTCS:
    def _temporal_query(self):
        query = QueryGraph()
        query.add_node(0, 0)
        query.add_node(1, 1)
        query.add_node(2, 2)
        query.add_edge(0, 1, time_rank=0)
        query.add_edge(1, 2, time_rank=1)
        return query

    def test_finds_time_ordered_embeddings(self):
        matcher = LiTCSMatcher(self._temporal_query())
        assert matcher.insert_edge(10, 11, 0, 1.0, 0, 1) == []
        found = matcher.insert_edge(11, 12, 0, 2.0, 1, 2)
        assert len(found) == 1
        assert dict(found[0].node_map) == {0: 10, 1: 11, 2: 12}

    def test_rejects_out_of_order_timestamps(self):
        matcher = LiTCSMatcher(self._temporal_query())
        matcher.insert_edge(10, 11, 0, 5.0, 0, 1)
        assert matcher.insert_edge(11, 12, 0, 2.0, 1, 2) == []

    def test_matches_mnemonic_temporal_on_ordered_stream(self):
        query = self._temporal_query()
        events = [
            StreamEvent.insert(10, 11, 0, 1.0, 0, 1),
            StreamEvent.insert(20, 21, 0, 2.0, 0, 1),
            StreamEvent.insert(11, 12, 0, 3.0, 1, 2),
            StreamEvent.insert(21, 22, 0, 4.0, 1, 2),
            StreamEvent.insert(11, 22, 0, 5.0, 1, 2),
        ]
        engine = MnemonicEngine(query, match_def=TemporalIsomorphismMatcher())
        mnemonic = set()
        for event in events:
            mnemonic |= {e.node_map for e in engine.batch_inserts([event]).positive_embeddings}
        litcs = LiTCSMatcher(query)
        found = set()
        for event in events:
            found |= {e.node_map for e in litcs.insert_edge(event.src, event.dst, event.label,
                                                            event.timestamp, event.src_label,
                                                            event.dst_label)}
        assert found == mnemonic

    def test_deletion_evicts_partials(self):
        matcher = LiTCSMatcher(self._temporal_query())
        matcher.insert_edge(10, 11, 0, 1.0, 0, 1)
        assert matcher.stats.stored_partials == 1
        evicted = matcher.delete_edge(10, 11, 0)
        assert evicted == 1
        assert matcher.stats.stored_partials == 0
        # The prefix is gone, so a later completion no longer fires.
        assert matcher.insert_edge(11, 12, 0, 2.0, 1, 2) == []

    def test_memory_metric_grows_with_partial_matches(self):
        matcher = LiTCSMatcher(self._temporal_query())
        for i in range(10):
            matcher.insert_edge(100 + i, 200 + i, 0, float(i), 0, 1)
        assert matcher.stats.peak_stored_partials == 10

    def test_delete_unknown_edge_rejected(self):
        with pytest.raises(QueryError):
            LiTCSMatcher(self._temporal_query()).delete_edge(1, 2, 0)


class TestCrossSystemAgreement:
    def test_all_systems_agree_on_isomorphism_node_maps(self, workload):
        events, graph, queries = workload
        query = queries[1]
        reference = brute_force_node_maps(query, graph, injective=True) if graph.num_vertices <= 12 \
            else {e.node_map for e in enumerate_static(query, events)}
        mnemonic = {e.node_map for e in enumerate_static(query, events)}
        ceci = CECIMatcher(query).match_node_maps(graph)
        turboflux = set()
        tf = TurboFluxMatcher(query)
        for e in events:
            for emb in tf.insert_edge(e.src, e.dst, e.label, e.src_label, e.dst_label):
                turboflux.add(emb.node_map)
        assert mnemonic == ceci == turboflux == reference if graph.num_vertices <= 12 \
            else mnemonic == ceci == turboflux
