"""Unit tests for the DEBI bitmap index."""

import pytest

from repro.core.debi import DEBI
from repro.query.query_graph import QueryGraph
from repro.query.query_tree import QueryTree


@pytest.fixture
def tree():
    query = QueryGraph.from_edges([(0, 1), (1, 2), (1, 3)])
    return QueryTree(query, root=0)


class TestDEBI:
    def test_initial_state(self, tree):
        debi = DEBI(tree)
        assert not debi.get(0, 0)
        assert debi.total_bits_set() == 0
        assert debi.root_count() == 0

    def test_set_get_clear_edge_bits(self, tree):
        debi = DEBI(tree)
        debi.set(10, 0)
        debi.set(10, 2)
        assert debi.get(10, 0)
        assert debi.get(10, 2)
        assert not debi.get(10, 1)
        assert debi.row(10) == 0b101
        debi.clear(10, 0)
        assert debi.row(10) == 0b100

    def test_clear_edge_resets_row(self, tree):
        debi = DEBI(tree)
        debi.set(7, 1)
        debi.clear_edge(7)
        assert debi.row(7) == 0
        assert debi.total_bits_set() == 0

    def test_roots_bitvector(self, tree):
        debi = DEBI(tree)
        debi.set_root(42)
        assert debi.is_root(42)
        assert debi.root_count() == 1
        debi.clear_root(42)
        assert not debi.is_root(42)

    def test_candidates_for_column(self, tree):
        debi = DEBI(tree)
        debi.set(1, 1)
        debi.set(5, 1)
        debi.set(5, 0)
        assert set(debi.candidates_for_column(1).tolist()) == {1, 5}
        assert debi.column_cardinality(1) == 2
        assert debi.column_cardinality(0) == 1

    def test_reset(self, tree):
        debi = DEBI(tree)
        debi.set(3, 0)
        debi.set_root(9)
        debi.reset()
        assert debi.total_bits_set() == 0
        assert not debi.is_root(9)

    def test_nbytes_grows_with_rows(self, tree):
        debi = DEBI(tree)
        before = debi.nbytes()
        debi.set(10_000, 0)
        assert debi.nbytes() > before

    def test_filter_candidates_matches_scalar_gets(self, tree):
        debi = DEBI(tree)
        for eid in (0, 3, 9, 64, 200):
            debi.set(eid, 1)
        pool = list(range(250))
        filtered = debi.filter_candidates(pool, 1)
        assert filtered == [eid for eid in pool if debi.get(eid, 1)]
        # Small pools take the scalar path; results must be identical.
        assert debi.filter_candidates([0, 1, 2, 3], 1) == [0, 3]
        assert debi.filter_candidates([], 1) == []
        # Rows never written are treated as zero.
        assert debi.filter_candidates([10_000, 20_000, 30_000, 40_000,
                                       50_000, 60_000, 70_000, 80_000, 90_000], 1) == []

    def test_single_edge_query_still_valid(self):
        query = QueryGraph.from_edges([(0, 1)])
        tree = QueryTree(query, root=0)
        debi = DEBI(tree)
        debi.set(0, 0)
        assert debi.get(0, 0)
