"""Unit tests for the query graph, query tree, matching orders and masks."""

import pytest

from repro.query.masking import MaskTable
from repro.query.matching_order import build_matching_order, build_matching_orders
from repro.query.query_graph import WILDCARD_LABEL, QueryGraph
from repro.query.query_tree import QueryTree, select_root
from repro.utils.validation import QueryError


def chain_query(n: int) -> QueryGraph:
    query = QueryGraph()
    for i in range(n - 1):
        query.add_edge(i, i + 1)
    return query


class TestQueryGraph:
    def test_from_edges_with_labels(self):
        query = QueryGraph.from_edges([(0, 1, 5), (1, 2)], node_labels={0: 1, 1: 2, 2: 3})
        assert query.num_nodes == 3
        assert query.num_edges == 2
        assert query.node_label(0) == 1
        assert query.edge(0).label == 5
        assert query.edge(1).label == WILDCARD_LABEL

    def test_auto_added_nodes_are_wildcard(self):
        query = QueryGraph.from_edges([(0, 1)])
        assert query.node_label(0) == WILDCARD_LABEL

    def test_edges_between_and_neighbors(self):
        query = QueryGraph.from_edges([(0, 1), (1, 0), (1, 2)])
        assert {e.index for e in query.edges_between(0, 1)} == {0, 1}
        assert query.neighbors(1) == {0, 2}
        assert query.degree(1) == 3

    def test_other_endpoint(self):
        query = QueryGraph.from_edges([(0, 1)])
        edge = query.edge(0)
        assert edge.other(0) == 1
        assert edge.other(1) == 0
        with pytest.raises(QueryError):
            edge.other(5)

    def test_label_requirements(self):
        query = QueryGraph.from_edges([(0, 1, 7), (0, 2, 7), (3, 0, 9)])
        assert query.out_label_requirement(0) == {7: 2}
        assert query.in_label_requirement(0) == {9: 1}

    def test_validate_rejects_empty_and_disconnected(self):
        with pytest.raises(QueryError):
            QueryGraph().validate()
        query = QueryGraph.from_edges([(0, 1), (2, 3)])
        with pytest.raises(QueryError):
            query.validate()

    def test_relabel_node_rejected(self):
        query = QueryGraph()
        query.add_node(0, 1)
        with pytest.raises(QueryError):
            query.add_node(0, 2)

    def test_is_tree(self):
        assert chain_query(4).is_tree()
        cyclic = QueryGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        assert not cyclic.is_tree()

    def test_unknown_lookups(self):
        query = chain_query(3)
        with pytest.raises(QueryError):
            query.node_label(99)
        with pytest.raises(QueryError):
            query.edge(99)

    def test_label_frequencies(self):
        query = QueryGraph.from_edges([(0, 1)], node_labels={0: 5, 1: 5})
        assert query.label_frequencies() == {5: 2}


class TestQueryTree:
    def test_bfs_tree_structure(self):
        query = chain_query(4)
        tree = QueryTree(query, root=0)
        assert tree.root == 0
        assert tree.num_columns == 3
        assert tree.parent == {1: 0, 2: 1, 3: 2}
        assert tree.depth == {0: 0, 1: 1, 2: 2, 3: 3}
        assert tree.bfs_order == [0, 1, 2, 3]
        assert tree.non_tree_edges == []
        assert tree.leaves() == [3]
        assert tree.diameter_bound() == 3

    def test_non_tree_edges_detected(self):
        query = QueryGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        tree = QueryTree(query, root=0)
        assert len(tree.tree_edges) == 2
        assert len(tree.non_tree_edges) == 1
        non_tree = tree.non_tree_edges[0]
        assert not tree.is_tree_edge(non_tree.index)

    def test_parent_child_ignores_direction(self):
        # Edge directed child -> parent: u0 is still the parent of u2.
        query = QueryGraph.from_edges([(2, 0), (0, 1)])
        tree = QueryTree(query, root=0)
        assert tree.parent[2] == 0
        tree_edge = tree.tree_edge_by_child[2]
        assert not tree_edge.parent_is_src

    def test_columns_are_unique_and_dense(self):
        query = QueryGraph.from_edges([(0, 1), (0, 2), (1, 3), (2, 4)])
        tree = QueryTree(query, root=0)
        columns = sorted(te.column for te in tree.tree_edges)
        assert columns == list(range(tree.num_columns))
        assert tree.column_of(3) == tree.tree_edge_by_child[3].column

    def test_column_of_root_rejected(self):
        tree = QueryTree(chain_query(3), root=0)
        with pytest.raises(QueryError):
            tree.column_of(0)

    def test_path_to_root(self):
        tree = QueryTree(chain_query(5), root=0)
        assert tree.path_to_root(4) == [4, 3, 2, 1, 0]

    def test_invalid_root_rejected(self):
        with pytest.raises(QueryError):
            QueryTree(chain_query(3), root=77)

    def test_root_selection_prefers_rare_data_label(self):
        query = QueryGraph.from_edges([(0, 1)], node_labels={0: 1, 1: 2})
        # Label 2 is rarer in the data graph, so node 1 should win.
        root = select_root(query, data_label_frequencies={1: 100, 2: 3})
        assert root == 1

    def test_root_selection_prefers_degree_without_stats(self):
        query = QueryGraph.from_edges([(0, 1), (0, 2), (0, 3)],
                                      node_labels={0: 1, 1: 1, 2: 1, 3: 1})
        assert select_root(query) == 0


class TestMatchingOrder:
    def test_every_query_edge_gets_an_order(self):
        query = QueryGraph.from_edges([(0, 1), (1, 2), (2, 0), (1, 3)])
        tree = QueryTree(query, root=0)
        orders = build_matching_orders(query, tree)
        assert set(orders) == {e.index for e in query.edges()}

    def test_steps_cover_all_nodes_exactly_once(self):
        query = QueryGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)])
        tree = QueryTree(query, root=0)
        for edge in query.edges():
            order = build_matching_order(query, tree, edge)
            bound = {edge.src, edge.dst}
            for step in order.steps:
                assert step.node not in bound, "node bound twice"
                assert step.anchor in bound, "anchor must already be bound"
                bound.add(step.node)
            assert bound == set(query.nodes())

    def test_extension_uses_tree_edges_only(self):
        query = QueryGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        tree = QueryTree(query, root=0)
        for order in build_matching_orders(query, tree).values():
            for step in order.steps:
                assert tree.is_tree_edge(step.tree_edge_index)
                assert step.debi_column == tree.tree_edge_for(step.tree_edge_index).column

    def test_verify_edges_listed_for_cycles(self):
        query = QueryGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        tree = QueryTree(query, root=0)
        orders = build_matching_orders(query, tree)
        # Whatever the start edge, the closing (non-tree) edge must be verified
        # either at a step or at the pinned start.
        non_tree_index = tree.non_tree_edges[0].index
        for order in orders.values():
            mentioned = set(order.start_verify_edges)
            for step in order.steps:
                mentioned.update(step.verify_edges)
            if order.start_edge != non_tree_index:
                assert non_tree_index in mentioned

    def test_parallel_query_edges_verified_at_start(self):
        query = QueryGraph.from_edges([(0, 1), (0, 1), (1, 2)])
        tree = QueryTree(query, root=0)
        order = build_matching_order(query, tree, query.edge(0))
        assert 1 in order.start_verify_edges

    def test_path_to_root_comes_first(self):
        query = chain_query(5)
        tree = QueryTree(query, root=0)
        # Start at the far end (3,4): the first steps must walk back to the root.
        order = build_matching_order(query, tree, query.edge(3))
        assert [s.node for s in order.steps[:3]] == [2, 1, 0]


class TestMaskTable:
    def test_masked_positions_are_strictly_earlier(self):
        query = QueryGraph.from_edges([(0, 1), (1, 2), (2, 0), (1, 3)])
        tree = QueryTree(query, root=0)
        table = MaskTable(query, tree)
        for edge in query.edges():
            mask = table.mask_for(edge.index)
            assert mask.masked_edges == frozenset(range(edge.index))
            assert not mask.is_masked(edge.index)

    def test_non_tree_start_requires_no_old_witness(self):
        query = QueryGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        tree = QueryTree(query, root=0)
        table = MaskTable(query, tree)
        non_tree = tree.non_tree_edges[0].index
        assert table.mask_for(non_tree).require_no_old_witness
        for tree_edge in tree.tree_edges:
            assert not table.mask_for(tree_edge.query_edge.index).require_no_old_witness

    def test_as_table_shape(self):
        query = QueryGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        tree = QueryTree(query, root=0)
        rows = MaskTable(query, tree).as_table()
        assert len(rows) == 3 and all(len(r) == 3 for r in rows)
        assert rows[0][0] == "*"
        assert rows[2][:2] == ["1", "1"]
        assert len(MaskTable(query, tree)) == 3
