"""Integration test: the worked example of the paper's Figure 1.

The fixture in ``conftest.py`` reconstructs the query (7 nodes, 7 edges,
one non-tree edge) and the three data-graph snapshots G, G1 and G2.  The
narrative in Sections II, V and VI implies concrete embedding counts at
each snapshot; this test drives the full engine through the same
sequence of batches and checks every one of them, plus the structural
invariants (DEBI definition, duplicate-freedom, consistency with a
from-scratch run on the final graph).
"""


from repro.baselines import CECIMatcher
from repro.core.engine import EngineConfig, MnemonicEngine
from repro.core.parallel import ParallelConfig
from repro.matchers import IsomorphismMatcher
from repro.streams.config import StreamConfig, StreamType
from tests.conftest import brute_force_node_maps


class TestPaperExample:
    def test_query_tree_shape(self, paper_example):
        engine = MnemonicEngine(paper_example.query, root=0)
        # Root u0 with 6 tree edges and one non-tree edge (u2, u5).
        assert engine.tree.root == 0
        assert engine.tree.num_columns == 6
        assert len(engine.tree.non_tree_edges) == 1
        non_tree = engine.tree.non_tree_edges[0]
        assert {non_tree.src, non_tree.dst} == {2, 5}

    def test_initial_snapshot_has_two_embeddings(self, paper_example):
        engine = MnemonicEngine(paper_example.query, root=0)
        result = engine.batch_inserts(paper_example.initial_events())
        assert result.num_positive == paper_example.expected_initial
        # Both embeddings root at v1 (vertex 11) and differ in the image of u6.
        u6_images = {dict(e.node_map)[6] for e in result.positive_embeddings}
        assert u6_images == {10, 18}
        assert all(dict(e.node_map)[0] == 11 for e in result.positive_embeddings)

    def test_delta1_creates_two_new_embeddings(self, paper_example):
        engine = MnemonicEngine(paper_example.query, root=0)
        engine.batch_inserts(paper_example.initial_events())
        result = engine.batch_inserts(paper_example.delta1_events())
        assert result.num_positive == paper_example.expected_after_delta1_new
        assert all(dict(e.node_map)[0] == 10 for e in result.positive_embeddings)

    def test_delta2_inserts_then_deletes(self, paper_example):
        engine = MnemonicEngine(paper_example.query, root=0)
        engine.batch_inserts(paper_example.initial_events())
        engine.batch_inserts(paper_example.delta1_events())
        insert_result = engine.batch_inserts(paper_example.delta2_insert_events())
        assert insert_result.num_positive == paper_example.expected_after_delta2_new
        delete_result = engine.batch_deletes(paper_example.delta2_delete_events())
        assert delete_result.num_negative == paper_example.expected_after_delta2_removed

    def test_net_result_matches_from_scratch(self, paper_example):
        engine = MnemonicEngine(paper_example.query, root=0)
        positives = []
        negatives = []
        positives += engine.batch_inserts(paper_example.initial_events()).positive_embeddings
        positives += engine.batch_inserts(paper_example.delta1_events()).positive_embeddings
        positives += engine.batch_inserts(paper_example.delta2_insert_events()).positive_embeddings
        negatives += engine.batch_deletes(paper_example.delta2_delete_events()).negative_embeddings

        final_node_maps = brute_force_node_maps(paper_example.query, paper_example.final_graph())
        assert len(final_node_maps) == paper_example.expected_final_total

        alive = {e.node_map for e in positives} - {e.node_map for e in negatives}
        assert alive == final_node_maps
        # Exactly-once emission at the edge level.
        identities = [(e.node_map, e.edge_map) for e in positives]
        assert len(identities) == len(set(identities))

    def test_whole_stream_through_snapshot_generator(self, paper_example):
        config = EngineConfig(
            stream=StreamConfig(stream_type=StreamType.INSERT_DELETE, batch_size=3),
            parallel=ParallelConfig(backend="thread", num_workers=2),
        )
        engine = MnemonicEngine(paper_example.query, match_def=IsomorphismMatcher(),
                                config=config, root=0)
        events = (
            paper_example.initial_events()
            + paper_example.delta1_events()
            + paper_example.delta2_insert_events()
            + paper_example.delta2_delete_events()
        )
        result = engine.run(events)
        # Net embeddings must match the from-scratch answer regardless of batching.
        final_node_maps = brute_force_node_maps(paper_example.query, paper_example.final_graph())
        alive = {e.node_map for e in result.all_positive()} - {
            e.node_map for e in result.all_negative()
        }
        assert alive == final_node_maps

    def test_agrees_with_ceci_on_every_snapshot(self, paper_example):
        stages = [
            paper_example.initial_events(),
            paper_example.delta1_events(),
            paper_example.delta2_insert_events(),
        ]
        engine = MnemonicEngine(paper_example.query, root=0)
        accumulated = set()
        import repro.datasets as ds

        applied = []
        for stage in stages:
            result = engine.batch_inserts(stage)
            accumulated |= {e.node_map for e in result.positive_embeddings}
            applied += stage
            ceci = CECIMatcher(paper_example.query).match_node_maps(ds.graph_from_events(applied))
            assert accumulated == ceci

    def test_masking_table_shape(self, paper_example):
        engine = MnemonicEngine(paper_example.query, root=0)
        table = engine.masks.as_table()
        assert len(table) == 7
        # Row i has exactly i masked positions plus the start marker.
        for i, row in enumerate(table):
            assert row[i] == "*"
            assert row.count("1") == i
