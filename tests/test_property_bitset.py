"""Property-based tests: the bitsets behave like reference set models."""

from hypothesis import given, settings, strategies as st

from repro.utils.bitset import BitMatrix, BitVector

# Operations on a BitVector: (op, index)
_vector_ops = st.lists(
    st.tuples(st.sampled_from(["set", "clear"]), st.integers(min_value=0, max_value=512)),
    max_size=60,
)

# Operations on a BitMatrix: (op, row, col)
_matrix_ops = st.lists(
    st.tuples(
        st.sampled_from(["set", "clear", "clear_row"]),
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=0, max_value=7),
    ),
    max_size=60,
)


class TestBitVectorModel:
    @given(_vector_ops)
    @settings(max_examples=60, deadline=None)
    def test_matches_set_model(self, ops):
        vector = BitVector(initial_capacity=4)
        model: set[int] = set()
        for op, index in ops:
            if op == "set":
                vector.set(index)
                model.add(index)
            else:
                vector.clear(index)
                model.discard(index)
        assert vector.to_set() == model
        assert vector.count() == len(model)
        for index in range(0, 513, 13):
            assert vector.get(index) == (index in model)


class TestBitMatrixModel:
    @given(_matrix_ops)
    @settings(max_examples=60, deadline=None)
    def test_matches_dict_model(self, ops):
        matrix = BitMatrix(width=8, initial_rows=2)
        model: set[tuple[int, int]] = set()
        for op, row, col in ops:
            if op == "set":
                matrix.set(row, col)
                model.add((row, col))
            elif op == "clear":
                matrix.clear(row, col)
                model.discard((row, col))
            else:
                matrix.clear_row(row)
                model = {(r, c) for (r, c) in model if r != row}
        assert matrix.count() == len(model)
        for row in {r for r, _ in model} | {0, 1, 199}:
            expected_mask = sum(1 << c for (r, c) in model if r == row)
            assert matrix.get_row(row) == expected_mask
        for col in range(8):
            assert matrix.column_count(col) == sum(1 for (_, c) in model if c == col)

    @given(_matrix_ops)
    @settings(max_examples=30, deadline=None)
    def test_row_roundtrip(self, ops):
        matrix = BitMatrix(width=8)
        for op, row, col in ops:
            if op == "set":
                matrix.set(row, col)
        for _, row, _ in ops:
            mask = matrix.get_row(row)
            matrix.set_row(row, mask)
            assert matrix.get_row(row) == mask
