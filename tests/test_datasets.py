"""Unit tests for the synthetic dataset generators."""

from collections import Counter

import pytest

from repro.datasets import (
    LANLConfig,
    LSBenchConfig,
    NetFlowConfig,
    build_query_workload,
    generate_lanl_stream,
    generate_lsbench_stream,
    generate_netflow_stream,
    graph_from_events,
)
from repro.streams.events import EventKind, decode_lsbench_triple, encode_lsbench_triple
from repro.utils.validation import ConfigurationError


class TestNetFlow:
    def test_shape_and_labels(self):
        stream = generate_netflow_stream(NetFlowConfig(num_events=2000, num_hosts=150, seed=1))
        assert len(stream) == 2000
        assert all(e.kind is EventKind.INSERT for e in stream)
        assert all(0 <= e.label < 8 for e in stream)
        assert all(e.src_label == 0 and e.dst_label == 0 for e in stream)  # single node type
        assert all(e.src != e.dst for e in stream)

    def test_determinism(self):
        a = generate_netflow_stream(NetFlowConfig(num_events=500, seed=5))
        b = generate_netflow_stream(NetFlowConfig(num_events=500, seed=5))
        assert [(e.src, e.dst, e.label) for e in a] == [(e.src, e.dst, e.label) for e in b]

    def test_power_law_skew(self):
        stream = generate_netflow_stream(NetFlowConfig(num_events=5000, num_hosts=500, seed=2))
        degree = Counter()
        for e in stream:
            degree[e.src] += 1
            degree[e.dst] += 1
        counts = sorted(degree.values(), reverse=True)
        top_share = sum(counts[: max(1, len(counts) // 20)]) / sum(counts)
        # The top 5% of hosts should carry well above a uniform share of the traffic.
        assert top_share > 0.15

    def test_contains_parallel_edges(self):
        stream = generate_netflow_stream(NetFlowConfig(num_events=3000, num_hosts=100, seed=3,
                                                       repeat_probability=0.4))
        triples = Counter((e.src, e.dst, e.label) for e in stream)
        assert any(count > 1 for count in triples.values())

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            NetFlowConfig(num_events=0)
        with pytest.raises(ConfigurationError):
            NetFlowConfig(attachment=1.5)


class TestLSBench:
    def test_prefix_is_insert_only_and_tail_has_deletes(self):
        config = LSBenchConfig(num_events=2000, num_users=200, seed=4)
        stream = generate_lsbench_stream(config)
        prefix_len = int(config.num_events * config.prefix_fraction)
        assert all(e.kind is EventKind.INSERT for e in stream[:prefix_len])
        deletes = [e for e in stream[prefix_len:] if e.kind is EventKind.DELETE]
        assert deletes, "expected deletions in the tail"
        assert all(0 <= e.label < 45 for e in stream)

    def test_deletions_target_live_edges(self):
        stream = generate_lsbench_stream(LSBenchConfig(num_events=1500, num_users=150, seed=6))
        # Replaying the stream against the graph store must never fail.
        graph = graph_from_events(stream)
        assert graph.num_edges > 0

    def test_wire_format_roundtrip(self):
        stream = generate_lsbench_stream(LSBenchConfig(num_events=800, num_users=80, seed=7))
        for event in stream:
            wire = encode_lsbench_triple(event)
            decoded = decode_lsbench_triple(wire, timestamp=event.timestamp)
            assert decoded.kind is event.kind
            assert decoded.as_triple() == event.as_triple()

    def test_determinism(self):
        a = generate_lsbench_stream(LSBenchConfig(num_events=400, seed=9))
        b = generate_lsbench_stream(LSBenchConfig(num_events=400, seed=9))
        assert a == b


class TestLANL:
    def test_timestamps_monotone_and_bounded(self):
        config = LANLConfig(num_events=3000, num_entities=200, seed=8)
        stream = generate_lanl_stream(config)
        timestamps = [e.timestamp for e in stream]
        assert timestamps == sorted(timestamps)
        assert timestamps[-1] <= config.num_days * 24.0 * 60.0

    def test_node_and_edge_label_cardinalities(self):
        stream = generate_lanl_stream(LANLConfig(num_events=2000, num_entities=150, seed=9))
        node_labels = {e.src_label for e in stream} | {e.dst_label for e in stream}
        edge_labels = {e.label for e in stream}
        assert node_labels <= set(range(6))
        assert len(node_labels) > 1
        assert edge_labels <= set(range(3))

    def test_entity_labels_consistent(self):
        stream = generate_lanl_stream(LANLConfig(num_events=2000, num_entities=150, seed=10))
        seen: dict[int, int] = {}
        for e in stream:
            for vertex, label in ((e.src, e.src_label), (e.dst, e.dst_label)):
                assert seen.setdefault(vertex, label) == label

    def test_recurring_pairs_present(self):
        stream = generate_lanl_stream(LANLConfig(num_events=3000, num_entities=300, seed=11))
        pairs = Counter((e.src, e.dst) for e in stream)
        assert pairs.most_common(1)[0][1] > 5


class TestWorkloadBuilder:
    def test_build_query_workload(self):
        stream = generate_netflow_stream(NetFlowConfig(num_events=1500, num_hosts=100, seed=12))
        workload = build_query_workload(stream, tree_sizes=(3, 4), graph_sizes=(4,),
                                        queries_per_suite=2, prefix=1000, seed=3)
        assert workload.total() == 6
        for suite, query in workload:
            query.validate()
            size = int(suite.split("_")[1])
            assert query.num_nodes == size

    def test_graph_from_events_applies_deletes(self):
        stream = generate_lsbench_stream(LSBenchConfig(num_events=1000, num_users=100, seed=13))
        graph = graph_from_events(stream)
        inserts = sum(1 for e in stream if e.kind is EventKind.INSERT)
        deletes = len(stream) - inserts
        assert graph.num_edges == inserts - deletes

    def test_timestamped_workload(self):
        stream = generate_lanl_stream(LANLConfig(num_events=1500, num_entities=120, seed=14))
        workload = build_query_workload(stream, tree_sizes=(3,), graph_sizes=(),
                                        queries_per_suite=1, with_timestamps=True, seed=4)
        query = workload.queries("T_3")[0]
        assert all(e.time_rank is not None for e in query.edges())
