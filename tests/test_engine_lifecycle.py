"""Engine teardown: exception safety, idempotency, context-manager behaviour.

Regression tests for the close/exit path: a failure inside a ``with``
block (e.g. ``reset_index()`` raising mid-run) must still shut the
worker pool down, and a failure *during* teardown must neither mask the
in-flight exception nor leave a half-closed pool attached to the
engine.
"""

import pytest

from repro.core.engine import EngineConfig, MnemonicEngine
from repro.core.parallel import ParallelConfig
from repro.query.query_graph import QueryGraph
from repro.streams.config import StreamConfig
from repro.streams.events import StreamEvent


def path_query():
    return QueryGraph.from_edges([(0, 1), (1, 2)], node_labels={0: 0, 1: 1, 2: 2})


def chain_events(base=10):
    return [
        StreamEvent.insert(base, base + 1, src_label=0, dst_label=1),
        StreamEvent.insert(base + 1, base + 2, src_label=1, dst_label=2),
    ]


def pool_config():
    return EngineConfig(
        stream=StreamConfig(batch_size=4),
        parallel=ParallelConfig(backend="process", num_workers=2, chunk_size=2),
    )


class FlakyPool:
    """A stand-in pool whose close() raises once, then succeeds."""

    def __init__(self):
        self.close_calls = 0

    @property
    def usable(self):
        return False

    def close(self):
        self.close_calls += 1
        if self.close_calls == 1:
            raise OSError("worker refused to die")


class TestClose:
    def test_close_is_idempotent(self):
        engine = MnemonicEngine(path_query())
        engine.close()
        engine.close()
        # A serial engine has no pool; it stays usable after close.
        assert engine.batch_inserts(chain_events()).num_positive == 1

    def test_close_idempotent_with_real_pool(self):
        pytest.importorskip("multiprocessing.shared_memory")
        engine = MnemonicEngine(path_query(), config=pool_config())
        pool = engine._pool
        if pool is None:
            pytest.skip("pool could not spawn in this environment")
        engine.close()
        assert engine._pool is None
        assert not pool.usable
        engine.close()  # second close must not touch the dead pool

    def test_pool_reference_dropped_even_when_close_raises(self):
        engine = MnemonicEngine(path_query())
        flaky = FlakyPool()
        engine._pool = flaky
        engine._pool_finalizer = None
        with pytest.raises(OSError):
            engine.close()
        # The reference is gone: a retry is a no-op, not a double close.
        assert engine._pool is None
        engine.close()
        assert flaky.close_calls == 1

    def test_exit_closes_pool_when_body_raises(self):
        """reset_index() raising mid-run must not leak the worker pool."""
        pytest.importorskip("multiprocessing.shared_memory")
        with pytest.raises(RuntimeError, match="index corruption"):
            with MnemonicEngine(path_query(), config=pool_config()) as engine:
                pool = engine._pool
                if pool is None:
                    pytest.skip("pool could not spawn in this environment")
                engine.batch_inserts(chain_events())

                def broken_rebuild():
                    raise RuntimeError("index corruption")

                engine.index_manager.rebuild = broken_rebuild
                engine.reset_index()
        assert engine._pool is None
        assert not pool.usable

    def test_exit_does_not_mask_body_exception_with_teardown_failure(self):
        engine = MnemonicEngine(path_query())
        engine._pool = FlakyPool()
        engine._pool_finalizer = None
        with pytest.raises(ValueError, match="body failure"):
            with engine:
                raise ValueError("body failure")
        assert engine._pool is None

    def test_exit_raises_teardown_failure_when_body_succeeds(self):
        engine = MnemonicEngine(path_query())
        engine._pool = FlakyPool()
        engine._pool_finalizer = None
        with pytest.raises(OSError, match="worker refused to die"):
            with engine:
                pass
        assert engine._pool is None


class TestContextManagerReuse:
    def test_engine_usable_across_with_blocks_serial(self):
        engine = MnemonicEngine(path_query())
        with engine:
            first = engine.batch_inserts(chain_events())
        with engine:
            second = engine.batch_inserts(chain_events(base=20))
        assert first.num_positive == 1
        assert second.num_positive == 1

    def test_process_engine_falls_back_after_close(self):
        """After close() a process-backend engine keeps answering batches
        (per-batch fork fallback) — results stay correct without the pool."""
        pytest.importorskip("multiprocessing.shared_memory")
        engine = MnemonicEngine(path_query(), config=pool_config())
        with engine:
            engine.batch_inserts(chain_events())
        result = engine.batch_inserts(chain_events(base=20))
        assert result.num_positive == 1
