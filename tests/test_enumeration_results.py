"""Unit tests for embeddings, result sets, work decomposition and enumeration."""


from repro.core.engine import MnemonicEngine, enumerate_static
from repro.core.enumeration import WorkUnit, decompose_batch
from repro.core.results import Embedding, ResultSet
from repro.matchers import HomomorphismMatcher
from repro.query.query_graph import QueryGraph
from repro.streams.events import StreamEvent


class TestEmbedding:
    def test_build_and_accessors(self):
        emb = Embedding.build({1: 10, 0: 20}, {0: 5}, start_edge=0)
        assert emb.nodes() == {0: 20, 1: 10}
        assert emb.edges() == {0: 5}
        assert emb.vertex_of(1) == 10
        assert emb.positive
        assert emb.node_map == ((0, 20), (1, 10))  # canonical (sorted) order

    def test_identity_ignores_start_edge(self):
        a = Embedding.build({0: 1}, {0: 2}, start_edge=0)
        b = Embedding.build({0: 1}, {0: 2}, start_edge=3)
        assert a.identity() == b.identity()

    def test_identity_distinguishes_sign(self):
        pos = Embedding.build({0: 1}, {0: 2}, 0, positive=True)
        neg = Embedding.build({0: 1}, {0: 2}, 0, positive=False)
        assert pos.identity() != neg.identity()


class TestResultSet:
    def test_add_and_duplicate_detection(self):
        results = ResultSet()
        emb = Embedding.build({0: 1}, {0: 2}, 0)
        assert results.add(emb)
        assert not results.add(Embedding.build({0: 1}, {0: 2}, 5))
        assert len(results) == 1
        assert results.duplicates_rejected == 1
        assert emb in results

    def test_extend_and_partitions(self):
        results = ResultSet()
        added = results.extend([
            Embedding.build({0: 1}, {0: 2}, 0, positive=True),
            Embedding.build({0: 3}, {0: 4}, 0, positive=False),
        ])
        assert added == 2
        assert len(results.positives()) == 1
        assert len(results.negatives()) == 1
        assert len(results.node_mappings()) == 2


class TestWorkDecomposition:
    def _engine(self):
        query = QueryGraph.from_edges([(0, 1), (1, 2)], node_labels={0: 0, 1: 1, 2: 2})
        # Root pinned at node 0 so the DEBI column of node 1 has a downward
        # requirement (the 1 -> 2 edge), which is what these tests exercise.
        return MnemonicEngine(query, root=0)

    def test_units_require_label_match(self):
        engine = self._engine()
        engine.batch_inserts([StreamEvent.insert(10, 11, src_label=0, dst_label=1)])
        # Insert an edge that matches no query edge: no work units.
        result = engine.batch_inserts([StreamEvent.insert(50, 51, src_label=5, dst_label=5)])
        assert result.work_units == 0
        assert result.num_positive == 0

    def test_units_require_debi_bit_for_tree_edges(self):
        engine = self._engine()
        # (A -> B) matches the first tree edge by labels but has no downward
        # support yet, so its DEBI bit is unset and no unit is created.
        result = engine.batch_inserts([StreamEvent.insert(10, 11, src_label=0, dst_label=1)])
        assert result.work_units == 0

    def test_units_created_when_supported(self):
        engine = self._engine()
        engine.batch_inserts([StreamEvent.insert(11, 12, src_label=1, dst_label=2)])
        result = engine.batch_inserts([StreamEvent.insert(10, 11, src_label=0, dst_label=1)])
        assert result.work_units == 1
        assert result.num_positive == 1

    def test_decompose_batch_non_tree_edges_skip_debi(self):
        query = QueryGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        engine = MnemonicEngine(query)
        engine.batch_inserts([
            StreamEvent.insert(1, 2),
            StreamEvent.insert(2, 3),
        ])
        context = engine._make_context(batch_edge_ids={0, 1}, positive=True)
        units = decompose_batch(context, [0, 1])
        # Wildcard labels: every edge matches the non-tree query edge regardless of DEBI.
        non_tree_index = engine.tree.non_tree_edges[0].index
        assert any(u.start_edge == non_tree_index for u in units)


class TestEnumerationSemantics:
    def test_isomorphism_rejects_vertex_reuse(self):
        query = QueryGraph.from_edges([(0, 1), (1, 2)], node_labels={0: 0, 1: 1, 2: 0})
        events = [
            StreamEvent.insert(7, 8, src_label=0, dst_label=1),
            StreamEvent.insert(8, 7, src_label=1, dst_label=0),
        ]
        iso = enumerate_static(query, events)
        homo = enumerate_static(query, events, match_def=HomomorphismMatcher())
        # Isomorphism cannot map nodes 0 and 2 to the same vertex; homomorphism can.
        assert len(iso) == 0
        assert len(homo) == 1

    def test_self_loop_query_edge(self):
        query = QueryGraph.from_edges([(0, 0), (0, 1)])
        events = [
            StreamEvent.insert(5, 5),
            StreamEvent.insert(5, 6),
        ]
        # Homomorphism: node 1 may map to 5 (reusing the self-loop) or to 6.
        homo = enumerate_static(query, events, match_def=HomomorphismMatcher())
        assert {e.node_map for e in homo} == {((0, 5), (1, 5)), ((0, 5), (1, 6))}
        # Isomorphism: the self-loop constraint still binds node 0 to vertex 5,
        # and node 1 must map to a distinct vertex.
        iso = enumerate_static(query, events)
        assert {e.node_map for e in iso} == {((0, 5), (1, 6))}

    def test_parallel_data_edges_create_distinct_embeddings(self):
        query = QueryGraph.from_edges([(0, 1), (1, 2)], node_labels={0: 0, 1: 1, 2: 2})
        events = [
            StreamEvent.insert(1, 2, label=0, src_label=0, dst_label=1),
            StreamEvent.insert(1, 2, label=0, src_label=0, dst_label=1),  # parallel instance
            StreamEvent.insert(2, 3, label=0, src_label=1, dst_label=2),
        ]
        found = enumerate_static(query, events)
        # Same node mapping, two distinct edge-level embeddings (context-awareness).
        assert len(found) == 2
        assert len({e.node_map for e in found}) == 1
        assert len({e.edge_map for e in found}) == 2

    def test_parallel_query_edges_need_distinct_witnesses(self):
        query = QueryGraph.from_edges([(0, 1), (0, 1)])
        one_edge = [StreamEvent.insert(4, 5)]
        two_edges = [StreamEvent.insert(4, 5), StreamEvent.insert(4, 5)]
        assert len(enumerate_static(query, one_edge)) == 0
        assert len(enumerate_static(query, two_edges)) >= 1

    def test_root_bit_pruning_does_not_lose_matches(self):
        # Chain query where enumeration starts far from the root.
        query = QueryGraph.from_edges([(0, 1), (1, 2), (2, 3)],
                                      node_labels={0: 0, 1: 1, 2: 2, 3: 3})
        engine = MnemonicEngine(query)
        engine.batch_inserts([
            StreamEvent.insert(10, 11, src_label=0, dst_label=1),
            StreamEvent.insert(11, 12, src_label=1, dst_label=2),
        ])
        result = engine.batch_inserts([StreamEvent.insert(12, 13, src_label=2, dst_label=3)])
        assert result.num_positive == 1

    def test_work_unit_dataclass(self):
        unit = WorkUnit(edge_id=3, start_edge=1)
        assert unit.edge_id == 3 and unit.start_edge == 1
