"""Fault-injection tests for the durable-state stack.

Three layers are attacked independently:

* the **journal scanner** — torn headers, clobbered magic, truncated
  payloads, CRC bit flips and unknown record kinds must each stop the
  scan at the last intact record, never crash or mis-decode;
* the **checkpoint loader** — a missing sidecar (crash between payload
  and sidecar write), a corrupted payload, or a short payload must each
  fall back to the previous checkpoint; only a state directory with *no*
  usable checkpoint raises :class:`StorageError`;
* the **tiered DEBI** — the hot/cold split is an implementation detail:
  every operation must agree with the in-memory BitMatrix reference,
  including after segment remaps (flush + drop + reopen of every mmap).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.engine import MnemonicEngine
from repro.storage.checkpoint import CheckpointError, CheckpointManager
from repro.storage.journal import (
    HEADER_BYTES,
    JournalWriter,
    RecordKind,
    encode_record,
    scan_journal,
)
from repro.storage.runtime import EngineStorage, StorageError
from repro.storage.spill import TieredBitMatrix
from repro.utils.bitset import BitMatrix
from repro.utils.rng import make_rng

from tests.test_recovery import (
    identity_counts,
    make_config,
    make_stream,
    path_query,
    run_snapshots,
    snapshots_for,
)


# ---------------------------------------------------------------------- journal scanner
def write_journal(path, n: int = 5) -> list[int]:
    """Append ``n`` EPOCH records; returns each record's start offset."""
    writer = JournalWriter(path)
    offsets = []
    for epoch in range(n):
        offsets.append(writer.offset)
        writer.append(RecordKind.EPOCH, epoch, ([("payload", epoch)], []))
    writer.close()
    return offsets


def test_scan_clean_journal(tmp_path):
    path = tmp_path / "journal.log"
    write_journal(path, n=4)
    scan = scan_journal(path)
    assert scan.corruption is None
    assert [r.epoch for r in scan.records] == [0, 1, 2, 3]
    assert scan.valid_bytes == path.stat().st_size


def test_scan_missing_journal(tmp_path):
    scan = scan_journal(tmp_path / "nope.log")
    assert scan.records == [] and scan.corruption is None


def test_scan_torn_header(tmp_path):
    path = tmp_path / "journal.log"
    offsets = write_journal(path, n=3)
    data = path.read_bytes()
    path.write_bytes(data[: offsets[2] + HEADER_BYTES - 1])
    scan = scan_journal(path)
    assert "torn header" in scan.corruption
    assert [r.epoch for r in scan.records] == [0, 1]
    assert scan.valid_bytes == offsets[2]


def test_scan_torn_payload(tmp_path):
    path = tmp_path / "journal.log"
    offsets = write_journal(path, n=3)
    data = path.read_bytes()
    path.write_bytes(data[: offsets[2] + HEADER_BYTES + 2])
    scan = scan_journal(path)
    assert "torn payload" in scan.corruption
    assert scan.valid_bytes == offsets[2]


def test_scan_crc_mismatch(tmp_path):
    path = tmp_path / "journal.log"
    offsets = write_journal(path, n=3)
    data = bytearray(path.read_bytes())
    data[offsets[1] + HEADER_BYTES + 1] ^= 0xFF  # flip a bit mid-payload
    path.write_bytes(bytes(data))
    scan = scan_journal(path)
    assert "CRC mismatch" in scan.corruption
    assert [r.epoch for r in scan.records] == [0]
    assert scan.valid_bytes == offsets[1]


def test_scan_bad_magic(tmp_path):
    path = tmp_path / "journal.log"
    offsets = write_journal(path, n=2)
    data = bytearray(path.read_bytes())
    data[offsets[1]] = ord("X")
    path.write_bytes(bytes(data))
    scan = scan_journal(path)
    assert "bad magic" in scan.corruption
    assert scan.valid_bytes == offsets[1]


def test_scan_unknown_kind(tmp_path):
    path = tmp_path / "journal.log"
    offsets = write_journal(path, n=1)
    with open(path, "ab") as fh:
        fh.write(encode_record(99, 1, b"data"))  # type: ignore[arg-type]
    scan = scan_journal(path)
    assert "unknown record kind 99" in scan.corruption
    assert len(scan.records) == 1
    assert scan.valid_bytes == path.stat().st_size - (HEADER_BYTES + 4)
    assert offsets  # silence unused warning


def test_truncate_drops_tail_only(tmp_path):
    path = tmp_path / "journal.log"
    offsets = write_journal(path, n=3)
    JournalWriter.truncate(path, offsets[2])
    scan = scan_journal(path)
    assert scan.corruption is None
    assert [r.epoch for r in scan.records] == [0, 1]
    # appending after a truncate extends the clean prefix
    writer = JournalWriter(path)
    assert writer.offset == offsets[2]
    writer.append(RecordKind.EPOCH, 7, ([], []))
    writer.close()
    assert [r.epoch for r in scan_journal(path).records] == [0, 1, 7]


# ---------------------------------------------------------------------- checkpoint fallback
def test_checkpoint_missing_sidecar_falls_back(tmp_path):
    manager = CheckpointManager(tmp_path, keep=3)
    manager.save(1, {"v": 1}, {"journal_offset": 10})
    manager.save(2, {"v": 2}, {"journal_offset": 20})
    (tmp_path / "ck_000000000002.json").unlink()  # crash between payload+sidecar
    state, meta = manager.load_latest()
    assert state == {"v": 1} and meta["seq"] == 1


def test_checkpoint_corrupt_payload_falls_back(tmp_path):
    manager = CheckpointManager(tmp_path, keep=3)
    manager.save(1, {"v": 1}, {"journal_offset": 10})
    manager.save(2, {"v": 2}, {"journal_offset": 20})
    payload = tmp_path / "ck_000000000002.pkl"
    data = bytearray(payload.read_bytes())
    data[len(data) // 2] ^= 0xFF
    payload.write_bytes(bytes(data))
    state, meta = manager.load_latest()
    assert state == {"v": 1} and meta["seq"] == 1


def test_checkpoint_short_payload_falls_back(tmp_path):
    manager = CheckpointManager(tmp_path, keep=3)
    manager.save(1, {"v": 1}, {"journal_offset": 10})
    manager.save(2, {"v": 2}, {"journal_offset": 20})
    payload = tmp_path / "ck_000000000002.pkl"
    payload.write_bytes(payload.read_bytes()[:-4])
    state, meta = manager.load_latest()
    assert meta["seq"] == 1


def test_no_usable_checkpoint_raises(tmp_path):
    manager = CheckpointManager(tmp_path, keep=2)
    with pytest.raises(CheckpointError):
        manager.load_latest()
    manager.save(1, {"v": 1}, {"journal_offset": 0})
    (tmp_path / "ck_000000000001.json").unlink()
    with pytest.raises(CheckpointError, match="sidecar missing"):
        manager.load_latest()


def test_checkpoint_prune_keeps_newest(tmp_path):
    manager = CheckpointManager(tmp_path, keep=2)
    for seq in (1, 2, 3, 4):
        manager.save(seq, {"v": seq}, {"journal_offset": seq})
    assert manager.sequence_numbers() == [3, 4]


# ---------------------------------------------------------------------- engine-level faults
def test_engine_recovers_past_missing_sidecar(tmp_path):
    """Newest checkpoint unusable -> older checkpoint + longer journal replay."""
    events = make_stream(seed=3301, length=120)
    snapshots = snapshots_for(events)
    with MnemonicEngine(path_query(), config=make_config()) as engine:
        straight = identity_counts(run_snapshots(engine, snapshots))

    directory = tmp_path / "state"
    engine = MnemonicEngine(path_query(), config=make_config(directory))
    pre = run_snapshots(engine, snapshots)
    engine.close()

    checkpoints = directory / "checkpoints"
    sidecars = sorted(checkpoints.glob("ck_*.json"))
    assert len(sidecars) >= 2
    newest_meta = json.loads(sidecars[-1].read_text())
    sidecars[-1].unlink()

    recovered = MnemonicEngine.open(directory)
    info = recovered.recovery_info
    assert info["checkpoint_sealed"] < newest_meta["sealed"]
    assert info["replayed_records"] > 0
    # refeeding nothing: the whole stream was sealed, so recovery alone
    # must restore final state; verify by continuing with fresh events
    extra = snapshots_for(make_stream(seed=3302, length=24))
    post = run_snapshots(recovered, extra)
    recovered.close()

    with MnemonicEngine(path_query(), config=make_config()) as engine:
        run_snapshots(engine, snapshots)
        expected_post = identity_counts(run_snapshots(engine, extra))
    assert identity_counts(pre) == straight
    assert identity_counts(post) == expected_post


def test_engine_all_checkpoints_corrupt_raises(tmp_path):
    directory = tmp_path / "state"
    engine = MnemonicEngine(path_query(), config=make_config(directory))
    run_snapshots(engine, snapshots_for(make_stream(seed=3303, length=40)))
    engine.close()
    for sidecar in (directory / "checkpoints").glob("ck_*.json"):
        sidecar.unlink()
    with pytest.raises(StorageError, match="no usable checkpoint"):
        MnemonicEngine.open(directory)


def test_open_without_state_raises(tmp_path):
    with pytest.raises(StorageError, match="no durable state"):
        EngineStorage.peek_kind(tmp_path / "empty")


def test_kind_mismatch_detected(tmp_path):
    from repro.core.registry import MultiQueryEngine
    from repro.utils.validation import ConfigurationError

    directory = tmp_path / "state"
    engine = MnemonicEngine(path_query(), config=make_config(directory))
    engine.close()
    with pytest.raises(ConfigurationError, match="belongs to a 'single' engine"):
        MultiQueryEngine.open(directory)


# ---------------------------------------------------------------------- tiered DEBI parity
def reference_pair(tmp_path, width=8, hot_rows=16, segment_rows=8):
    tiered = TieredBitMatrix(
        width=width, directory=tmp_path / "tier",
        hot_rows=hot_rows, segment_rows=segment_rows,
    )
    reference = BitMatrix(width=width, initial_rows=4)
    return tiered, reference


def assert_matrices_equal(tiered: TieredBitMatrix, reference: BitMatrix) -> None:
    ref_rows, ref_n = reference.export_words()
    got_rows, got_n = tiered.export_words()
    assert got_n == ref_n
    np.testing.assert_array_equal(np.asarray(got_rows)[:got_n], np.asarray(ref_rows)[:ref_n])
    assert tiered.count() == reference.count()
    for col in range(tiered.width):
        assert tiered.column_count(col) == reference.column_count(col)
        np.testing.assert_array_equal(
            tiered.rows_with_column(col), reference.rows_with_column(col)
        )


def test_tiered_matrix_randomized_parity(tmp_path, rng_seed):
    """Property test: a tiered matrix is indistinguishable from BitMatrix.

    Random op soup over rows far beyond the hot budget; replay failures
    with ``REPRO_TEST_SEED=<seed>``.
    """
    rng = make_rng(rng_seed)
    tiered, reference = reference_pair(tmp_path)
    max_row = 200  # hot budget is 16: most rows live in cold segments
    for step in range(800):
        op = rng.integers(7)
        row = int(rng.integers(max_row))
        col = int(rng.integers(tiered.width))
        if op == 0:
            tiered.set(row, col)
            reference.set(row, col)
        elif op == 1:
            tiered.clear(row, col)
            reference.clear(row, col)
        elif op == 2:
            mask = int(rng.integers(1 << tiered.width))
            tiered.set_row(row, mask)
            reference.set_row(row, mask)
        elif op == 3:
            tiered.clear_row(row)
            reference.clear_row(row)
        elif op == 4:
            assert tiered.get(row, col) == reference.get(row, col)
            assert tiered.get_row(row) == reference.get_row(row)
            assert tiered.row_any(row) == reference.row_any(row)
        elif op == 5:
            probe = rng.integers(max_row, size=17).astype(np.int64)
            np.testing.assert_array_equal(
                tiered.column_mask(probe, col), reference.column_mask(probe, col)
            )
            rows = [int(r) for r in probe]
            assert tiered.filter_rows_with_column(rows, col) == \
                reference.filter_rows_with_column(rows, col)
        else:
            if rng.random() < 0.2:
                tiered.remap()  # flush + reopen every segment mid-soup
    assert_matrices_equal(tiered, reference)
    assert tiered.spilled_rows > 0 and tiered.disk_bytes > 0


def test_tiered_matrix_remap_parity(tmp_path):
    tiered, reference = reference_pair(tmp_path, hot_rows=4, segment_rows=4)
    for row in range(40):
        tiered.set(row, row % tiered.width)
        reference.set(row, row % tiered.width)
    before = tiered.export_words()
    tiered.remap()
    after = tiered.export_words()
    np.testing.assert_array_equal(np.asarray(before[0]), np.asarray(after[0]))
    assert_matrices_equal(tiered, reference)


def test_tiered_matrix_load_words_round_trip(tmp_path):
    rng = make_rng(4142)
    words = rng.integers(1 << 8, size=50, dtype=np.uint64)
    tiered, _ = reference_pair(tmp_path, hot_rows=8, segment_rows=8)
    tiered.load_words(words, len(words))
    got, n = tiered.export_words()
    assert n == len(words)
    np.testing.assert_array_equal(np.asarray(got), words)
    # shrinking restore: stale cold content must not leak back
    tiered.load_words(words[:10], 10)
    got, n = tiered.export_words()
    assert n == 10
    np.testing.assert_array_equal(np.asarray(got), words[:10])
    assert tiered.count() == int(np.unpackbits(words[:10].view(np.uint8)).sum())


def test_tiered_matrix_discards_stale_segments(tmp_path):
    directory = tmp_path / "tier"
    first = TieredBitMatrix(width=4, directory=directory, hot_rows=2, segment_rows=2)
    first.set(10, 1)
    first.flush()
    assert list(directory.glob("seg_*.bin"))
    second = TieredBitMatrix(width=4, directory=directory, hot_rows=2, segment_rows=2)
    assert not list(directory.glob("seg_*.bin"))
    assert second.get_row(10) == 0


def test_spilled_debi_remap_parity(tmp_path, rng_seed):
    """A spilling engine remapped mid-stream matches an in-memory run.

    The remap (flush + drop + reopen of every cold segment) between
    batches must be invisible to enumeration — same embeddings, same
    DEBI content.
    """
    rng = make_rng(rng_seed)
    events = make_stream(seed=int(rng.integers(2**31)), length=100)
    snapshots = snapshots_for(events)
    with MnemonicEngine(path_query(), config=make_config()) as engine:
        straight = identity_counts(run_snapshots(engine, snapshots))
        straight_buffers = engine.debi.export_buffers()
        straight_rows = np.array(straight_buffers["rows"], copy=True)
        straight_n = straight_buffers["num_rows"]

    engine = MnemonicEngine(
        path_query(), config=make_config(tmp_path / "state", hot_rows=4)
    )
    results = []
    for snapshot in snapshots:
        results.append(engine.process_snapshot(snapshot))
        engine.debi._bits.remap()
    assert identity_counts(results) == straight
    buffers = engine.debi.export_buffers()
    assert buffers["num_rows"] == straight_n
    np.testing.assert_array_equal(
        np.asarray(buffers["rows"])[:straight_n], straight_rows[:straight_n]
    )
    assert engine.debi.spill_stats()["spilled_rows"] > 0
    engine.close()
