"""Tests for the standing-query registry and the multi-query engine.

The contract under test: N registered queries produce exactly the
results N independent engines would (DEBI filtering, duplicate
elimination and acceptance stay per-query), while the per-batch graph
work — mutation, snapshot export, raw candidate scans — is shared.
"""

import pytest

from repro.core.engine import EngineConfig, MnemonicEngine
from repro.core.parallel import ParallelConfig
from repro.core.registry import MultiQueryEngine, QueryRegistry, build_query_runtime
from repro.core.results import CollectingSink
from repro.graph.adjacency import DynamicGraph
from repro.matchers.homomorphism import HomomorphismMatcher
from repro.query.query_graph import QueryGraph
from repro.streams.config import StreamConfig, StreamType
from repro.streams.events import StreamEvent
from repro.utils.validation import ConfigurationError


def path_query():
    return QueryGraph.from_edges([(0, 1), (1, 2)], node_labels={0: 0, 1: 1, 2: 2})


def edge_query():
    return QueryGraph.from_edges([(0, 1)], node_labels={0: 1, 1: 2})


def wedge_query():
    """Two edges out of the same source label — shares the 0->1 anchor with path_query."""
    return QueryGraph.from_edges([(0, 1), (0, 2)], node_labels={0: 0, 1: 1, 2: 1})


def chain_events(base=10):
    return [
        StreamEvent.insert(base, base + 1, src_label=0, dst_label=1),
        StreamEvent.insert(base + 1, base + 2, src_label=1, dst_label=2),
    ]


def identities(run_result):
    return {
        e.identity()
        for s in run_result.snapshots
        for e in s.positive_embeddings + s.negative_embeddings
    }


def independent_identities(query, events, stream_type=StreamType.INSERT_ONLY, batch_size=2):
    config = EngineConfig(
        stream=StreamConfig(stream_type=stream_type, batch_size=batch_size)
    )
    with MnemonicEngine(query, config=config) as engine:
        run = engine.run(list(events))
    return (
        {e.identity() for s in run.snapshots for e in s.positive_embeddings},
        {e.identity() for s in run.snapshots for e in s.negative_embeddings},
        run.total_candidates_scanned,
    )


class TestRegistry:
    def test_register_returns_distinct_ids(self):
        registry = QueryRegistry(DynamicGraph())
        a = registry.register(path_query())
        b = registry.register(edge_query(), name="edges")
        assert a != b
        assert len(registry) == 2
        assert registry.get(b).name == "edges"
        assert registry.get(a).name == f"q{a}"

    def test_unregister_returns_accumulated_results(self):
        engine = MultiQueryEngine(config=EngineConfig(stream=StreamConfig(batch_size=2)))
        qid = engine.register(path_query())
        engine.run(chain_events())
        run_result = engine.unregister(qid)
        assert run_result.total_positive == 1
        assert len(engine.registry) == 0
        with pytest.raises(ConfigurationError):
            engine.unregister(qid)

    def test_version_bumps_on_membership_change(self):
        registry = QueryRegistry(DynamicGraph())
        v0 = registry.version
        qid = registry.register(path_query())
        assert registry.version == v0 + 1
        registry.unregister(qid)
        assert registry.version == v0 + 2

    def test_register_on_populated_graph_rebuilds_index(self):
        graph = DynamicGraph()
        graph.add_edge(10, 11, src_label=0, dst_label=1)
        graph.add_edge(11, 12, src_label=1, dst_label=2)
        runtime = build_query_runtime(path_query(), None, graph)
        assert runtime.debi.total_bits_set() > 0


class TestResultParity:
    """Shared runs must be embedding-for-embedding identical to independent engines."""

    def test_insert_only_matches_independent_engines(self):
        events = chain_events() + chain_events(base=20) + [
            StreamEvent.insert(11, 13, src_label=1, dst_label=2),
        ]
        queries = [path_query(), edge_query(), wedge_query()]
        engine = MultiQueryEngine(config=EngineConfig(stream=StreamConfig(batch_size=2)))
        ids = [engine.register(q) for q in queries]
        shared = engine.run(list(events))

        shared_scans = shared.total_candidates_scanned
        independent_scans = 0
        for qid, query in zip(ids, queries):
            expected_pos, _, scans = independent_identities(query, events)
            independent_scans += scans
            assert identities(shared.per_query[qid]) == expected_pos
        assert shared_scans <= independent_scans

    def test_insert_delete_matches_independent_engines(self):
        events = (
            chain_events()
            + chain_events(base=20)
            + [StreamEvent.delete(11, 12, 0), StreamEvent.delete(21, 22, 0)]
        )
        queries = [path_query(), edge_query()]
        config = EngineConfig(
            stream=StreamConfig(stream_type=StreamType.INSERT_DELETE, batch_size=2)
        )
        engine = MultiQueryEngine(config=config)
        ids = [engine.register(q) for q in queries]
        shared = engine.run(list(events))
        for qid, query in zip(ids, queries):
            expected_pos, expected_neg, _ = independent_identities(
                query, events, stream_type=StreamType.INSERT_DELETE
            )
            got_pos = {
                e.identity()
                for s in shared.per_query[qid].snapshots
                for e in s.positive_embeddings
            }
            got_neg = {
                e.identity()
                for s in shared.per_query[qid].snapshots
                for e in s.negative_embeddings
            }
            assert got_pos == expected_pos
            assert got_neg == expected_neg

    def test_delete_batch_with_shared_anchor_label(self):
        """Two queries anchored on the same (label 0 -> label 1) edge: deleting
        that edge must destroy the right embeddings for each query, and the
        one-pass mutation must leave both DEBIs consistent."""
        engine = MultiQueryEngine()
        q_path = engine.register(path_query())
        q_wedge = engine.register(wedge_query())
        engine.batch_inserts([
            StreamEvent.insert(10, 11, src_label=0, dst_label=1),
            StreamEvent.insert(10, 13, src_label=0, dst_label=1),
            StreamEvent.insert(11, 12, src_label=1, dst_label=2),
        ])
        result = engine.batch_deletes([StreamEvent.delete(10, 11, 0)])
        # path 10->11->12 dies; wedge {10->11, 10->13} dies too.
        assert result.per_query[q_path].num_negative == 1
        assert result.per_query[q_wedge].num_negative == 2
        # After the shared mutation both queries see a consistent world:
        # re-inserting the edge re-creates exactly the destroyed embeddings.
        redo = engine.batch_inserts([StreamEvent.insert(10, 11, src_label=0, dst_label=1)])
        assert redo.per_query[q_path].num_positive == 1
        assert redo.per_query[q_wedge].num_positive == 2

    def test_mixed_match_definitions(self):
        triangle = QueryGraph.from_edges(
            [(0, 1), (1, 2), (2, 0)], node_labels={0: 0, 1: 0, 2: 0}
        )
        events = [
            StreamEvent.insert(1, 2, src_label=0, dst_label=0),
            StreamEvent.insert(2, 3, src_label=0, dst_label=0),
            StreamEvent.insert(3, 1, src_label=0, dst_label=0),
        ]
        engine = MultiQueryEngine(config=EngineConfig(stream=StreamConfig(batch_size=3)))
        iso = engine.register(triangle)
        hom = engine.register(triangle, match_def=HomomorphismMatcher())
        shared = engine.run(list(events))
        assert shared.per_query[iso].total_positive == 3
        # Homomorphism counts at least the isomorphic images.
        assert shared.per_query[hom].total_positive >= 3


class TestSharedScans:
    def test_shared_scans_strictly_fewer_for_overlapping_queries(self):
        # Both queries extend from a (label 0) vertex over label-0 edges, so
        # the second query's scans hit the shared pool cache.
        events = []
        for i in range(6):
            events.extend(chain_events(base=10 * (i + 1)))
        queries = [path_query(), path_query()]
        engine = MultiQueryEngine(config=EngineConfig(stream=StreamConfig(batch_size=4)))
        for q in queries:
            engine.register(q)
        shared = engine.run(list(events))
        independent = sum(
            independent_identities(q, events, batch_size=4)[2] for q in queries
        )
        assert shared.total_candidates_scanned < independent

    def test_sink_receives_snapshots(self):
        sink = CollectingSink()
        engine = MultiQueryEngine(config=EngineConfig(stream=StreamConfig(batch_size=2)))
        qid = engine.register(path_query(), sink=sink)
        engine.run(chain_events() + chain_events(base=20))
        assert sink.snapshots_seen[qid] == 2
        assert len(sink.results[qid]) == 2


class TestMidStreamMembership:
    def test_register_mid_stream_sees_live_graph(self):
        engine = MultiQueryEngine()
        engine.batch_inserts([StreamEvent.insert(10, 11, src_label=0, dst_label=1)])
        qid = engine.register(path_query())
        # The first edge predates registration; the embedding completes now.
        result = engine.batch_inserts([StreamEvent.insert(11, 12, src_label=1, dst_label=2)])
        assert result.per_query[qid].num_positive == 1

    def test_unregister_mid_stream_stops_evaluation(self):
        engine = MultiQueryEngine()
        keep = engine.register(path_query())
        drop = engine.register(edge_query())
        engine.batch_inserts(chain_events())
        engine.unregister(drop)
        result = engine.batch_inserts(chain_events(base=20))
        assert set(result.per_query) == {keep}

    def test_graph_evolves_with_no_registered_queries(self):
        engine = MultiQueryEngine()
        engine.batch_inserts(chain_events())
        assert engine.graph.num_edges == 2
        qid = engine.register(path_query())
        result = engine.batch_inserts([StreamEvent.insert(20, 11, src_label=0, dst_label=1)])
        assert result.per_query[qid].num_positive == 1

    def test_delete_with_no_registered_queries(self):
        engine = MultiQueryEngine()
        engine.batch_inserts(chain_events())
        engine.batch_deletes([StreamEvent.delete(10, 11, 0)])
        assert engine.graph.num_edges == 1


class TestLifecycle:
    def test_context_manager_and_idempotent_close(self):
        with MultiQueryEngine() as engine:
            engine.register(path_query())
            engine.batch_inserts(chain_events())
        engine.close()  # second close is a no-op
        # Serial engines stay usable after close (no pool to lose).
        result = engine.batch_inserts(chain_events(base=20))
        assert result.total_embeddings == 1

    def test_rejects_external_store_config(self):
        with pytest.raises(ConfigurationError):
            MultiQueryEngine(
                config=EngineConfig(stream=StreamConfig(in_memory_window=4))
            )

    def test_load_initial_indexes_without_enumerating(self):
        engine = MultiQueryEngine()
        qid = engine.register(path_query())
        assert engine.load_initial(chain_events()) == 2
        registered = engine.registry.get(qid)
        assert registered.runtime.debi.total_bits_set() > 0
        result = engine.batch_inserts([StreamEvent.insert(20, 21, src_label=0, dst_label=1)])
        assert result.per_query[qid].num_positive == 0


class TestPoolIntegration:
    def test_pool_respawns_after_membership_change(self):
        pytest.importorskip("multiprocessing.shared_memory")
        config = EngineConfig(
            stream=StreamConfig(batch_size=4),
            parallel=ParallelConfig(backend="process", num_workers=2, chunk_size=2),
        )
        with MultiQueryEngine(config=config) as engine:
            a = engine.register(path_query())
            engine.batch_inserts(chain_events() + chain_events(base=20))
            first_pool = engine._pool
            b = engine.register(edge_query())
            result = engine.batch_inserts(chain_events(base=30))
            assert engine._pool is not first_pool, "stale pool must be replaced"
            assert result.per_query[a].num_positive == 1
            assert result.per_query[b].num_positive == 1

    def test_failed_pool_spawn_not_retried_until_membership_changes(self):
        """A spawn failure must latch (serial fallback), not respawn per batch."""
        config = EngineConfig(
            stream=StreamConfig(batch_size=4),
            parallel=ParallelConfig(backend="process", num_workers=2, chunk_size=2),
        )
        engine = MultiQueryEngine(config=config)
        engine.register(path_query())
        attempts = []

        def failing_create_multi(query_states, parallel_config):
            attempts.append(len(query_states))
            return None

        import repro.core.registry as registry_module
        original = registry_module.SharedMemoryPool.create_multi
        registry_module.SharedMemoryPool.create_multi = staticmethod(failing_create_multi)
        try:
            first = engine.batch_inserts(chain_events())
            engine.batch_inserts(chain_events(base=20))
            engine.batch_inserts(chain_events(base=30))
            assert len(attempts) == 1, "spawn must be attempted once, then latched"
            assert first.total_embeddings == 1  # serial fallback still answers
            engine.register(edge_query())
            engine.batch_inserts(chain_events(base=40))
            assert len(attempts) == 2, "membership change re-arms the spawn"
        finally:
            registry_module.SharedMemoryPool.create_multi = original
            engine.close()

    def test_pool_results_match_serial(self):
        pytest.importorskip("multiprocessing.shared_memory")
        events = []
        for i in range(8):
            events.extend(chain_events(base=10 * (i + 1)))

        def run(parallel):
            config = EngineConfig(stream=StreamConfig(batch_size=4), parallel=parallel)
            with MultiQueryEngine(config=config) as engine:
                ids = [engine.register(q) for q in (path_query(), wedge_query())]
                run_result = engine.run(list(events))
                exports = engine.snapshot_exports
            return ids, run_result, exports

        ids_s, serial, _ = run(ParallelConfig())
        ids_p, pooled, exports = run(
            ParallelConfig(backend="process", num_workers=2, chunk_size=2)
        )
        assert ids_s == ids_p
        for qid in ids_s:
            assert identities(serial.per_query[qid]) == identities(pooled.per_query[qid])
        # One export per enumeration phase, not one per query per phase.
        assert 0 < exports <= len(pooled.snapshots)
