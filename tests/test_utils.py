"""Unit tests for validation helpers, timers and RNG utilities."""

import time

import numpy as np
import pytest

from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.timers import Timeline, Timer, WallTimer
from repro.utils.validation import (
    ConfigurationError,
    check_in,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)


class TestValidation:
    def test_check_type_accepts_and_rejects(self):
        check_type(3, int, "x")
        with pytest.raises(ConfigurationError):
            check_type("3", int, "x")

    def test_check_positive(self):
        check_positive(1, "x")
        with pytest.raises(ConfigurationError):
            check_positive(0, "x")
        with pytest.raises(ConfigurationError):
            check_positive(-1, "x")

    def test_check_non_negative(self):
        check_non_negative(0, "x")
        with pytest.raises(ConfigurationError):
            check_non_negative(-0.5, "x")

    def test_check_probability(self):
        check_probability(0.0, "p")
        check_probability(1.0, "p")
        with pytest.raises(ConfigurationError):
            check_probability(1.5, "p")

    def test_check_in(self):
        check_in("a", {"a", "b"}, "mode")
        with pytest.raises(ConfigurationError):
            check_in("c", {"a", "b"}, "mode")


class TestTimers:
    def test_walltimer_accumulates(self):
        timer = WallTimer()
        with timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.005
        first = timer.elapsed
        with timer:
            time.sleep(0.01)
        assert timer.elapsed > first

    def test_walltimer_stop_without_start(self):
        timer = WallTimer()
        with pytest.raises(RuntimeError):
            timer.stop()

    def test_timer_phases_and_fraction(self):
        timer = Timer()
        with timer.phase("a"):
            time.sleep(0.01)
        with timer.phase("b"):
            pass
        assert timer.total("a") > 0
        assert timer.counts["a"] == 1
        assert 0 <= timer.fraction("b") <= 1
        assert timer.fraction("missing") == 0.0

    def test_timer_merge(self):
        t1, t2 = Timer(), Timer()
        with t1.phase("x"):
            pass
        with t2.phase("x"):
            pass
        with t2.phase("y"):
            pass
        t1.merge(t2)
        assert t1.counts["x"] == 2
        assert "y" in t1.totals

    def test_timeline_normalised_and_mean(self):
        timeline = Timeline()
        timeline.record(0.5, timestamp=timeline._origin + 1.0)
        timeline.record(1.0, timestamp=timeline._origin + 2.0)
        normalised = timeline.normalised()
        assert normalised[-1][0] == pytest.approx(1.0)
        assert timeline.mean() == pytest.approx(0.75)

    def test_timeline_empty(self):
        timeline = Timeline()
        assert timeline.normalised() == []
        assert timeline.mean() == 0.0


class TestRng:
    def test_make_rng_deterministic(self):
        a = make_rng(42).integers(1_000_000)
        b = make_rng(42).integers(1_000_000)
        assert a == b

    def test_make_rng_passthrough(self):
        gen = np.random.default_rng(1)
        assert make_rng(gen) is gen

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(0, 4)
        assert len(rngs) == 4
        draws = {int(r.integers(1_000_000_000)) for r in rngs}
        assert len(draws) > 1  # streams differ

    def test_spawn_rngs_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
