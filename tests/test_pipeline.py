"""Tests for the shared batch pipeline and epoch-aware pool execution.

The contract: ``pipeline="pipelined"`` overlaps batch k+1's mutations
with batch k's pool enumeration but produces bit-identical positive and
negative result sets on every workload, publishes exactly one epoch per
pool-dispatched phase, and recovers dispatched epochs parent-side when
the pool dies mid-stream.
"""

from __future__ import annotations

import pytest

from repro.core.engine import EngineConfig, MnemonicEngine
from repro.core.parallel import ParallelConfig, PoolBrokenError, SharedMemoryPool
from repro.core.registry import MultiQueryEngine
from repro.datasets import NetFlowConfig, generate_netflow_stream, graph_from_events
from repro.query.generator import QueryGenerator
from repro.streams.config import StreamConfig, StreamType
from repro.streams.events import EventKind, StreamEvent
from repro.utils.validation import ConfigurationError


def mixed_workload():
    """A query plus an insert+delete stream over a warm initial graph."""
    stream = generate_netflow_stream(NetFlowConfig(num_events=900, num_hosts=70, seed=13))
    graph = graph_from_events(stream[:500])
    query = QueryGenerator(graph, seed=2).tree_query(3)
    suffix = stream[500:]
    deletes = [
        StreamEvent.delete(e.src, e.dst, e.label, timestamp=e.timestamp)
        for e in suffix[::2]
        if e.kind is EventKind.INSERT
    ]
    return query, stream[:500], list(suffix) + deletes


def run_engine(query, initial, events, pipeline, parallel=None, batch_size=64):
    config = EngineConfig(
        stream=StreamConfig(batch_size=batch_size, stream_type=StreamType.INSERT_DELETE),
        parallel=parallel or ParallelConfig(),
        pipeline=pipeline,
    )
    with MnemonicEngine(query, config=config) as engine:
        engine.load_initial(initial)
        result = engine.run(events)
        counters = (
            engine.snapshot_exports,
            engine.enumeration_phases_with_units,
            engine.pool_enumeration_phases,
        )
    pos = {e.identity() for s in result.snapshots for e in s.positive_embeddings}
    neg = {e.identity() for s in result.snapshots for e in s.negative_embeddings}
    return pos, neg, result, counters


class TestPipelineConfig:
    def test_unknown_mode_rejected(self):
        from repro.query.query_graph import QueryGraph

        query = QueryGraph.from_edges([(0, 1)], node_labels={0: 1, 1: 2})
        with pytest.raises(ConfigurationError):
            MnemonicEngine(query, config=EngineConfig(pipeline="overlapped"))

    def test_serial_is_default(self):
        assert EngineConfig().pipeline == "serial"


class TestPipelinedParity:
    def test_pipelined_serial_backend_degenerates(self):
        """Without a pool there is nothing to overlap; results must match."""
        query, initial, events = mixed_workload()
        sp, sn, sr, _ = run_engine(query, initial, events, "serial")
        pp, pn, pr, _ = run_engine(query, initial, events, "pipelined")
        assert pp == sp and pn == sn
        assert pr.total_positive == sr.total_positive
        assert pr.total_negative == sr.total_negative

    def test_pipelined_pool_results_bit_identical(self):
        pytest.importorskip("multiprocessing.shared_memory")
        query, initial, events = mixed_workload()
        parallel = ParallelConfig(backend="process", num_workers=2, chunk_size=8)
        sp, sn, sr, _ = run_engine(query, initial, events, "serial")
        pp, pn, pr, counters = run_engine(query, initial, events, "pipelined", parallel)
        assert pp == sp and pn == sn
        exports, phases, pool_phases = counters
        assert pool_phases > 0, "workload must actually exercise the pool"
        assert exports == pool_phases, "exactly one epoch per dispatched phase"
        # Per-snapshot counts line up too, not just the union of identities.
        assert [s.num_positive for s in pr.snapshots] == [
            s.num_positive for s in sr.snapshots
        ]
        assert [s.num_negative for s in pr.snapshots] == [
            s.num_negative for s in sr.snapshots
        ]

    def test_pipelined_footprints_match_serial(self):
        """live_edges / debi_bits are captured at mutation time, so the
        pipelined look-ahead must not leak later batches into them."""
        pytest.importorskip("multiprocessing.shared_memory")
        query, initial, events = mixed_workload()
        parallel = ParallelConfig(backend="process", num_workers=2, chunk_size=8)
        _, _, sr, _ = run_engine(query, initial, events, "serial")
        _, _, pr, _ = run_engine(query, initial, events, "pipelined", parallel)
        assert [s.live_edges for s in pr.snapshots] == [s.live_edges for s in sr.snapshots]
        assert [s.debi_bits for s in pr.snapshots] == [s.debi_bits for s in sr.snapshots]

    def test_multi_query_pipelined_matches_serial(self):
        pytest.importorskip("multiprocessing.shared_memory")
        stream = generate_netflow_stream(NetFlowConfig(num_events=900, num_hosts=70, seed=13))
        graph = graph_from_events(stream[:500])
        gen = QueryGenerator(graph, seed=2)
        queries = [gen.tree_query(3), gen.tree_query(4)]
        _, initial, events = mixed_workload()

        def run_multi(pipeline, parallel):
            config = EngineConfig(
                stream=StreamConfig(batch_size=64, stream_type=StreamType.INSERT_DELETE),
                parallel=parallel,
                pipeline=pipeline,
            )
            with MultiQueryEngine(config=config) as engine:
                ids = [engine.register(q) for q in queries]
                engine.load_initial(initial)
                result = engine.run(events)
            return {
                qid: (
                    {e.identity() for s in rr.snapshots for e in s.positive_embeddings},
                    {e.identity() for s in rr.snapshots for e in s.negative_embeddings},
                )
                for qid, rr in ((qid, result.per_query[qid]) for qid in ids)
            }

        serial = run_multi("serial", ParallelConfig())
        pipelined = run_multi(
            "pipelined", ParallelConfig(backend="process", num_workers=2, chunk_size=8)
        )
        assert pipelined == serial


class TestEpochDispatch:
    def test_dispatch_bounded_by_writer_slots(self):
        pytest.importorskip("multiprocessing.shared_memory")
        query, initial, events = mixed_workload()
        config = EngineConfig(
            parallel=ParallelConfig(backend="process", num_workers=2, chunk_size=8)
        )
        with MnemonicEngine(query, config=config) as engine:
            pool = engine._pool
            if pool is None:
                pytest.skip("pool could not spawn in this environment")
            assert pool.max_epochs_in_flight == 2
            engine.load_initial(initial)
            inserts = [e for e in events if e.kind is EventKind.INSERT][:120]
            ids = [engine._insert_event(e) for e in inserts]
            engine.index_manager.handle_insertions(ids)
            context = engine._make_context(batch_edge_ids=set(ids), positive=True)
            from repro.core.enumeration import decompose_batch

            units = decompose_batch(context, ids)
            first = pool.dispatch({0: context}, {0: units})
            second = pool.dispatch({0: context}, {0: units})
            with pytest.raises(PoolBrokenError, match="in flight"):
                pool.dispatch({0: context}, {0: units})
            # Out-of-order drain: the newer epoch first, then the older one.
            newer = pool.drain(second)
            older = pool.drain(first)
            assert newer.outcomes[0].num_embeddings == older.outcomes[0].num_embeddings
            assert pool.epochs_in_flight == 0

    def test_drain_unknown_epoch_rejected(self):
        pytest.importorskip("multiprocessing.shared_memory")
        from repro.query.query_graph import QueryGraph

        query = QueryGraph.from_edges([(0, 1)], node_labels={0: 1, 1: 2})
        config = EngineConfig(
            parallel=ParallelConfig(backend="process", num_workers=2)
        )
        with MnemonicEngine(query, config=config) as engine:
            if engine._pool is None:
                pytest.skip("pool could not spawn in this environment")
            with pytest.raises(PoolBrokenError, match="not in flight"):
                engine._pool.drain(99)


class TestSmallBatchSerialGate:
    def test_small_phases_with_healthy_pool_run_serially(self, monkeypatch):
        """A phase too small to amortise a publication must run serially —
        never fork per-batch workers while a persistent pool exists."""
        pytest.importorskip("multiprocessing.shared_memory")
        import repro.core.pipeline as pipeline_module

        monkeypatch.setattr(
            pipeline_module, "run_enumeration",
            lambda *a, **k: pytest.fail(
                "small batches must not reach the per-batch fork fallback"
            ),
        )
        query, initial, events = mixed_workload()
        config = EngineConfig(
            # batch_size 2 stays far below the 2 * num_workers amortisation floor
            stream=StreamConfig(batch_size=2, stream_type=StreamType.INSERT_DELETE),
            parallel=ParallelConfig(backend="process", num_workers=2, chunk_size=8),
        )
        with MnemonicEngine(query, config=config) as engine:
            if engine._pool is None:
                pytest.skip("pool could not spawn in this environment")
            engine.load_initial(initial)
            result = engine.run(events[:40])
            assert engine.snapshot_exports == 0, "tiny phases must not publish"
        assert result.total_positive > 0


class TestSnapshotExportAccounting:
    def test_exports_survive_pool_break(self):
        """snapshot_exports must keep counting epochs published by a pool
        that later broke and was released."""
        pytest.importorskip("multiprocessing.shared_memory")
        query, initial, events = mixed_workload()
        config = EngineConfig(
            stream=StreamConfig(batch_size=64, stream_type=StreamType.INSERT_DELETE),
            parallel=ParallelConfig(backend="process", num_workers=2, chunk_size=8),
        )
        with MnemonicEngine(query, config=config) as engine:
            if engine._pool is None:
                pytest.skip("pool could not spawn in this environment")
            engine.load_initial(initial)
            generator = engine.initialize_stream(events)
            first = next(iter(generator))
            engine.process_snapshot(first)
            exported = engine.snapshot_exports
            assert exported > 0, "first batch must publish at this scale"
            engine.pipeline_pool_broken()  # what a mid-run failure triggers
            assert engine._pool is None
            assert engine.snapshot_exports == exported


class TestMidRunRegistrationRows:
    def test_sink_registered_query_gets_no_rows_for_earlier_batches(self):
        """A query registered by a sink mid-run must not receive spurious
        empty rows for batches applied before it existed."""
        engine = MultiQueryEngine(
            config=EngineConfig(stream=StreamConfig(batch_size=2))
        )
        late_ids = []

        def registering_sink(query_id, result):
            if not late_ids:
                from repro.query.query_graph import QueryGraph

                late = QueryGraph.from_edges([(0, 1)], node_labels={0: 1, 1: 2})
                late_ids.append(engine.register(late))

        from repro.query.query_graph import QueryGraph

        first = QueryGraph.from_edges(
            [(0, 1), (1, 2)], node_labels={0: 0, 1: 1, 2: 2}
        )
        engine.register(first, sink=registering_sink)
        events = [
            StreamEvent.insert(10, 11, src_label=0, dst_label=1),
            StreamEvent.insert(11, 12, src_label=1, dst_label=2),
            StreamEvent.insert(20, 21, src_label=0, dst_label=1),
            StreamEvent.insert(21, 22, src_label=1, dst_label=2),
        ]
        run = engine.run(events)
        (late_id,) = late_ids
        late_result = engine.registry.get(late_id).run_result
        # Registered after batch 0's delivery: rows start at batch 1.
        assert len(late_result.snapshots) == 1
        assert run.per_query[late_id].snapshots[0].number == 1
        engine.close()


class TestPoolBrokenRecovery:
    def test_worker_death_mid_pipeline_recovers_bit_identically(self):
        pytest.importorskip("multiprocessing.shared_memory")
        query, initial, events = mixed_workload()
        parallel = ParallelConfig(backend="process", num_workers=2, chunk_size=8)
        sp, sn, _, _ = run_engine(query, initial, events, "serial")
        config = EngineConfig(
            stream=StreamConfig(batch_size=64, stream_type=StreamType.INSERT_DELETE),
            parallel=parallel,
            pipeline="pipelined",
        )
        with pytest.warns(RuntimeWarning, match="pool failed"):
            with MnemonicEngine(query, config=config) as engine:
                if engine._pool is None:
                    pytest.skip("pool could not spawn in this environment")
                engine.load_initial(initial)
                results = []
                for batch in engine._pipeline.run_stream(
                    engine.initialize_stream(events)
                ):
                    results.append(engine._result_from_batch(batch))
                    if len(results) == 1 and engine._pool is not None:
                        # Kill the whole pool: a single dead worker can go
                        # unnoticed when the survivor drains every chunk.
                        for worker in engine._pool._workers:
                            worker.terminate()
        pos = {e.identity() for s in results for e in s.positive_embeddings}
        neg = {e.identity() for s in results for e in s.negative_embeddings}
        assert pos == sp
        assert neg == sn


class TestPoolLifecycleHelper:
    """The shared pool-ownership mixin both engines now use."""

    def test_detach_returns_pool_and_clears_reference(self):
        from repro.core.parallel import PoolOwnerMixin

        class Owner(PoolOwnerMixin):
            pass

        class FakePool:
            closed = False

            def close(self):
                self.closed = True

        owner = Owner()
        pool = FakePool()
        owner._pool = pool
        owner._pool_finalizer = None
        assert owner._detach_pool() is pool
        assert owner._pool is None
        assert not pool.closed
        assert owner._detach_pool() is None  # idempotent

    def test_close_pool_closes_once(self):
        from repro.core.parallel import PoolOwnerMixin

        class Owner(PoolOwnerMixin):
            pass

        class FakePool:
            close_calls = 0

            def close(self):
                self.close_calls += 1

        owner = Owner()
        pool = FakePool()
        owner._pool = pool
        owner._pool_finalizer = None
        owner._close_pool()
        owner._close_pool()
        assert pool.close_calls == 1
        assert owner._pool is None

    def test_adopt_arms_finalizer(self):
        from repro.core.parallel import PoolOwnerMixin

        class Owner(PoolOwnerMixin):
            pass

        owner = Owner()
        assert owner._adopt_pool(None) is None
        assert owner._pool_finalizer is None
        pool = SharedMemoryPool.__new__(SharedMemoryPool)  # no spawn needed
        pool._closed = True  # close() becomes a no-op
        assert owner._adopt_pool(pool) is pool
        assert owner._pool_finalizer is not None
        owner._detach_pool()
        assert owner._pool_finalizer is None
