"""Unit tests for the attribute store and the external (disk-spill) edge store."""

import os

import pytest

from repro.graph.attributes import AttributeStore
from repro.graph.edge import EdgeRecord, EdgeTriple, Endpoint
from repro.graph.external import ExternalEdgeStore


class TestEdgeTypes:
    def test_edge_record_endpoint_helpers(self):
        record = EdgeRecord(5, 1, 2, 3, 4.0)
        assert record.endpoint(Endpoint.SOURCE) == 1
        assert record.endpoint(Endpoint.DESTINATION) == 2
        assert record.reversed().src == 2
        assert Endpoint.SOURCE.other() is Endpoint.DESTINATION

    def test_edge_triple_key(self):
        assert EdgeTriple(1, 2, 3).key() == (1, 2, 3)
        assert EdgeTriple(1, 2).label == 0


class TestAttributeStore:
    def test_set_get_defaults(self):
        store = AttributeStore()
        store.define("bytes", default=0)
        store.set("bytes", 3, 1500)
        assert store.get("bytes", 3) == 1500
        assert store.get("bytes", 4) == 0
        assert store.get("missing_column", 3, default="x") == "x"

    def test_row_and_columns(self):
        store = AttributeStore()
        store.set("port", 1, 443)
        store.set("proto", 1, "tcp")
        assert store.row(1) == {"port": 443, "proto": "tcp"}
        assert set(store.columns()) == {"port", "proto"}
        assert "port" in store
        assert len(store) == 2

    def test_delete_row(self):
        store = AttributeStore()
        store.set("port", 1, 443)
        store.delete(1)
        assert store.get("port", 1) is None

    def test_row_includes_defaults(self):
        store = AttributeStore()
        store.define("flag", default=False)
        store.set("port", 2, 80)
        assert store.row(2) == {"port": 80, "flag": False}


class TestExternalEdgeStore:
    def _record(self, eid, src=1, dst=2):
        return EdgeRecord(eid, src, dst, 0, float(eid))

    def test_fifo_retention_and_spill(self, tmp_path):
        store = ExternalEdgeStore(in_memory_window=5, buffer_capacity=3,
                                  directory=str(tmp_path))
        for i in range(12):
            store.append(self._record(i, src=i % 3), debi_mask=i)
        assert store.resident_count == 5
        store.flush()
        assert store.spilled_count == 7
        assert store.stats.bytes_written > 0
        assert any(name.startswith("segment-") for name in os.listdir(tmp_path))

    def test_fetch_vertex_returns_resident_and_spilled(self, tmp_path):
        store = ExternalEdgeStore(in_memory_window=2, buffer_capacity=2,
                                  directory=str(tmp_path))
        for i in range(6):
            store.append(self._record(i, src=7), debi_mask=i + 1)
        store.flush()
        fetched = store.fetch_vertex(7)
        assert len(fetched) == 6
        # DEBI masks survive the round-trip.
        assert sorted(mask for _, mask in fetched) == [1, 2, 3, 4, 5, 6]
        assert store.stats.fetches == 1
        assert store.stats.fetched_edges == 6

    def test_fetch_unknown_vertex(self, tmp_path):
        store = ExternalEdgeStore(in_memory_window=4, directory=str(tmp_path))
        store.append(self._record(0, src=1))
        assert store.fetch_vertex(99) == []

    def test_update_mask_only_affects_resident(self, tmp_path):
        store = ExternalEdgeStore(in_memory_window=10, directory=str(tmp_path))
        store.append(self._record(0, src=1), debi_mask=0)
        store.update_mask(0, 0b101)
        fetched = store.fetch_vertex(1)
        assert fetched[0][1] == 0b101
        store.update_mask(12345, 1)  # unknown id: no-op

    def test_memory_bytes_and_close(self, tmp_path):
        store = ExternalEdgeStore(in_memory_window=3, buffer_capacity=100,
                                  directory=str(tmp_path))
        for i in range(5):
            store.append(self._record(i))
        assert store.memory_bytes() > 0
        store.close()  # flushes the pending buffer
        assert store.stats.spilled_edges == 2

    def test_invalid_configuration(self):
        with pytest.raises(Exception):
            ExternalEdgeStore(in_memory_window=0)
        with pytest.raises(Exception):
            ExternalEdgeStore(buffer_capacity=0)
