"""Shared fixtures and reference implementations for the test suite.

The most important pieces are:

* ``paper_example`` — a self-consistent reconstruction of the worked
  example of the paper's Figure 1 (query with 7 nodes, data graph
  snapshots G, G1, G2) together with the embedding counts that the
  paper's narrative implies;
* ``brute_force_node_maps`` — an exhaustive reference matcher used as
  ground truth by the unit, integration and property tests.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass

import pytest

from repro.graph.adjacency import DynamicGraph
from repro.query.query_graph import WILDCARD_LABEL, QueryGraph
from repro.streams.events import StreamEvent
from repro.utils.rng import make_rng


# ---------------------------------------------------------------------- seeded randomness
@pytest.fixture
def rng_seed(request) -> int:
    """A per-test RNG seed, printed on failure so runs can be replayed.

    Randomized tests derive all their randomness from this seed (via
    ``repro.utils.rng.make_rng``).  Set ``REPRO_TEST_SEED`` to pin it:

        REPRO_TEST_SEED=1234 pytest tests/test_recovery.py -k randomized
    """
    env = os.environ.get("REPRO_TEST_SEED")
    seed = int(env) if env else int.from_bytes(os.urandom(4), "little")
    request.node._repro_seed = seed
    return seed


@pytest.fixture
def rng(rng_seed):
    """A ``numpy`` Generator seeded from :func:`rng_seed`."""
    return make_rng(rng_seed)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    seed = getattr(item, "_repro_seed", None)
    if seed is not None and report.when == "call" and report.failed:
        report.sections.append(
            ("randomized test seed", f"replay with: REPRO_TEST_SEED={seed} pytest {item.nodeid}")
        )


# ---------------------------------------------------------------------- reference matcher
def brute_force_node_maps(
    query: QueryGraph,
    graph: DynamicGraph,
    injective: bool = True,
) -> set[tuple[tuple[int, int], ...]]:
    """Exhaustively enumerate the node mappings of every embedding.

    Only practical for tiny graphs; used as the ground truth oracle.
    """
    vertices = list(graph.vertices())
    query_nodes = list(query.nodes())
    results: set[tuple[tuple[int, int], ...]] = set()
    for assignment in itertools.product(vertices, repeat=len(query_nodes)):
        node_map = dict(zip(query_nodes, assignment))
        if injective and len(set(assignment)) != len(assignment):
            continue
        ok = True
        for u in query_nodes:
            label = query.node_label(u)
            if label != WILDCARD_LABEL and graph.vertex_label(node_map[u]) != label:
                ok = False
                break
        if not ok:
            continue
        for q_edge in query.edges():
            src, dst = node_map[q_edge.src], node_map[q_edge.dst]
            witnesses = [
                eid for eid in graph.find_edges(src, dst)
                if q_edge.label == WILDCARD_LABEL or graph.edge(eid).label == q_edge.label
            ]
            if not witnesses:
                ok = False
                break
        if ok:
            results.add(tuple(sorted(node_map.items())))
    return results


def graph_from_tuples(edges, vertex_labels=None) -> DynamicGraph:
    """Build a DynamicGraph from (src, dst[, label[, timestamp]]) tuples."""
    graph = DynamicGraph()
    for vertex, label in (vertex_labels or {}).items():
        graph.add_vertex(vertex, label)
    for item in edges:
        graph.add_edge(*item)
    return graph


# ---------------------------------------------------------------------- paper example
# Vertex labels (Figure 1): A=0, B=1, C=2, D=3, E=4, F=5
A, B, C, D, E, F = range(6)


@dataclass
class PaperExample:
    """The Figure 1 worked example: query + three graph snapshots."""

    query: QueryGraph
    #: vertex labels of the data graph
    vertex_labels: dict[int, int]
    #: edges present in the initial snapshot G (src, dst)
    initial_edges: list[tuple[int, int]]
    #: insertions applied at t1 (snapshot G1)
    delta1_inserts: list[tuple[int, int]]
    #: insertions / deletions applied at t2 (snapshot G2)
    delta2_inserts: list[tuple[int, int]]
    delta2_deletes: list[tuple[int, int]]
    #: expected embedding counts (derived in conftest docstring)
    expected_initial: int = 2
    expected_after_delta1_new: int = 2
    expected_after_delta2_new: int = 2
    expected_after_delta2_removed: int = 4
    expected_final_total: int = 2

    def initial_events(self) -> list[StreamEvent]:
        return [self._insert(s, d) for s, d in self.initial_edges]

    def delta1_events(self) -> list[StreamEvent]:
        return [self._insert(s, d) for s, d in self.delta1_inserts]

    def delta2_insert_events(self) -> list[StreamEvent]:
        return [self._insert(s, d) for s, d in self.delta2_inserts]

    def delta2_delete_events(self) -> list[StreamEvent]:
        return [StreamEvent.delete(s, d, 0) for s, d in self.delta2_deletes]

    def final_graph(self) -> DynamicGraph:
        graph = DynamicGraph()
        for v, label in self.vertex_labels.items():
            graph.add_vertex(v, label)
        deleted = list(self.delta2_deletes)
        for s, d in self.initial_edges + self.delta1_inserts + self.delta2_inserts:
            graph.add_edge(s, d, 0, 0.0)
        for s, d in deleted:
            graph.delete_edge_instance(s, d, 0)
        return graph

    def _insert(self, src: int, dst: int) -> StreamEvent:
        return StreamEvent.insert(
            src, dst, label=0, timestamp=0.0,
            src_label=self.vertex_labels[src], dst_label=self.vertex_labels[dst],
        )


def build_paper_example() -> PaperExample:
    """Reconstruct the Figure 1 example (see DESIGN.md for the derivation).

    Query (Figure 1(e)): u0=A, u1=B, u2=C, u3=D, u4=E, u5=F, u6=A with
    edges (u0,u1), (u2,u0), (u0,u5), (u1,u3), (u1,u4), (u2,u6), (u2,u5);
    all query edge labels are wildcards.

    The data graph G contains exactly the two embeddings described in
    Section II-A; the G1 insertions create two embeddings rooted at v0;
    the G2 batch (insert (v1,v2); delete (v3,v7) and (v1,v5)) first
    creates two embeddings through the new (v1,v2) edge and then destroys
    the four embeddings that relied on (v1,v5) / (v3,v7).
    """
    query = QueryGraph()
    for node, label in [(0, A), (1, B), (2, C), (3, D), (4, E), (5, F), (6, A)]:
        query.add_node(node, label)
    query.add_edge(0, 1)   # (u0, u1)
    query.add_edge(2, 0)   # (u2, u0)
    query.add_edge(0, 5)   # (u0, u5)
    query.add_edge(1, 3)   # (u1, u3)
    query.add_edge(1, 4)   # (u1, u4)
    query.add_edge(2, 6)   # (u2, u6)
    query.add_edge(2, 5)   # (u2, u5)  -- non-tree edge in the BFS tree rooted at u0
    query.validate()

    vertex_labels = {
        10: A,  # v0
        11: A,  # v1
        12: B,  # v2
        13: B,  # v3
        14: C,  # v4
        15: F,  # v5
        16: D,  # v6
        17: E,  # v7
        18: A,  # v8
        19: F,  # v9
    }
    initial_edges = [
        (14, 11),  # (v4, v1)  matches (u2, u0)
        (11, 13),  # (v1, v3)  matches (u0, u1)
        (14, 10),  # (v4, v0)  matches (u2, u6) in the 2nd embedding
        (11, 15),  # (v1, v5)  matches (u0, u5)
        (12, 17),  # (v2, v7)  matches (u1, u4) once v2 becomes a match of u1
        (13, 16),  # (v3, v6)  matches (u1, u3)
        (13, 17),  # (v3, v7)  matches (u1, u4)
        (14, 18),  # (v4, v8)  matches (u2, u6) in the 1st embedding
        (14, 15),  # (v4, v5)  matches (u2, u5)
        (14, 19),  # (v4, v9)  noise
    ]
    delta1_inserts = [(10, 12), (12, 16), (10, 15)]        # (v0,v2), (v2,v6), (v0,v5)
    delta2_inserts = [(11, 12)]                             # (v1,v2)
    delta2_deletes = [(13, 17), (11, 15)]                   # (v3,v7), (v1,v5)
    return PaperExample(
        query=query,
        vertex_labels=vertex_labels,
        initial_edges=initial_edges,
        delta1_inserts=delta1_inserts,
        delta2_inserts=delta2_inserts,
        delta2_deletes=delta2_deletes,
    )


@pytest.fixture
def paper_example() -> PaperExample:
    return build_paper_example()


# ---------------------------------------------------------------------- small reusable graphs
@pytest.fixture
def small_path_query() -> QueryGraph:
    """A 3-node path query with labelled nodes (A -> B -> A)."""
    query = QueryGraph()
    query.add_node(0, 0)
    query.add_node(1, 1)
    query.add_node(2, 0)
    query.add_edge(0, 1)
    query.add_edge(1, 2)
    return query


@pytest.fixture
def triangle_query() -> QueryGraph:
    """An unlabelled directed triangle query."""
    query = QueryGraph()
    query.add_edge(0, 1)
    query.add_edge(1, 2)
    query.add_edge(2, 0)
    return query
