"""Unit tests for incremental DEBI maintenance (IndexManager)."""

import pytest

from repro.core.api import DefaultMatchDefinition
from repro.core.debi import DEBI
from repro.core.filtering import IndexManager
from repro.graph.adjacency import DynamicGraph
from repro.query.query_graph import QueryGraph
from repro.query.query_tree import QueryTree


def make_manager(query, graph):
    tree = QueryTree(query, root=0)
    debi = DEBI(tree)
    manager = IndexManager(query, tree, graph, debi, DefaultMatchDefinition())
    return tree, debi, manager


def debi_matches_definition(manager) -> bool:
    """Check the exact DEBI invariant: bit == edge_match AND down(child, node)."""
    graph, tree, debi = manager.graph, manager.tree, manager.debi
    for record in graph.edges():
        for tree_edge in tree.tree_edges:
            expected = manager._bit_should_be_set(record, tree_edge)
            if debi.get(record.edge_id, tree_edge.column) != expected:
                return False
    for vertex in graph.vertices():
        expected = (
            manager.match_def.root_matcher(manager.query, graph, tree.root, vertex)
            and manager.down_ok(vertex, tree.root)
        )
        if debi.is_root(vertex) != expected:
            return False
    return True


@pytest.fixture
def path_query():
    # A -> B -> C as labels 0 -> 1 -> 2
    return QueryGraph.from_edges([(0, 1), (1, 2)], node_labels={0: 0, 1: 1, 2: 2})


class TestInsertions:
    def test_bits_set_for_matching_chain(self, path_query):
        graph = DynamicGraph()
        tree, debi, manager = make_manager(path_query, graph)
        e1 = graph.add_edge(10, 11, src_label=0, dst_label=1)
        e2 = graph.add_edge(11, 12, src_label=1, dst_label=2)
        manager.handle_insertions([e1, e2])
        col_u1 = tree.column_of(1)
        col_u2 = tree.column_of(2)
        assert debi.get(e2, col_u2)
        assert debi.get(e1, col_u1)
        assert debi.is_root(10)
        assert debi_matches_definition(manager)

    def test_partial_chain_sets_only_satisfiable_bits(self, path_query):
        graph = DynamicGraph()
        tree, debi, manager = make_manager(path_query, graph)
        e1 = graph.add_edge(10, 11, src_label=0, dst_label=1)
        manager.handle_insertions([e1])
        # Without the (B -> C) edge the (A -> B) edge lacks downward support.
        assert not debi.get(e1, tree.column_of(1))
        assert not debi.is_root(10)
        assert debi_matches_definition(manager)

    def test_late_arrival_completes_earlier_edges(self, path_query):
        graph = DynamicGraph()
        tree, debi, manager = make_manager(path_query, graph)
        e1 = graph.add_edge(10, 11, src_label=0, dst_label=1)
        manager.handle_insertions([e1])
        e2 = graph.add_edge(11, 12, src_label=1, dst_label=2)
        manager.handle_insertions([e2])
        assert debi.get(e1, tree.column_of(1))
        assert debi.is_root(10)
        assert debi_matches_definition(manager)

    def test_non_matching_labels_never_set(self, path_query):
        graph = DynamicGraph()
        tree, debi, manager = make_manager(path_query, graph)
        e1 = graph.add_edge(10, 11, src_label=2, dst_label=2)
        manager.handle_insertions([e1])
        assert debi.row(e1) == 0
        assert debi_matches_definition(manager)

    def test_traversal_counter_accumulates(self, path_query):
        graph = DynamicGraph()
        _, _, manager = make_manager(path_query, graph)
        e1 = graph.add_edge(10, 11, src_label=0, dst_label=1)
        frontier = manager.handle_insertions([e1])
        assert frontier.traversed_edges >= 1
        assert manager.total_traversals == frontier.traversed_edges
        assert manager.last_batch_traversals == frontier.traversed_edges

    def test_batch_shares_traversal(self, path_query):
        """A batch touching the same region traverses fewer edges than per-edge updates."""
        def run(batched: bool) -> int:
            graph = DynamicGraph()
            _, _, manager = make_manager(path_query, graph)
            center = graph.add_edge(10, 11, src_label=0, dst_label=1)
            manager.handle_insertions([center])
            new_ids = [graph.add_edge(11, 100 + i, src_label=1, dst_label=2) for i in range(20)]
            if batched:
                manager.handle_insertions(new_ids)
                return manager.last_batch_traversals
            total = 0
            for eid in new_ids:
                manager.handle_insertions([eid])
                total += manager.last_batch_traversals
            return total

        assert run(batched=True) <= run(batched=False)


class TestDeletions:
    def _build_chain(self, path_query):
        graph = DynamicGraph()
        tree, debi, manager = make_manager(path_query, graph)
        e1 = graph.add_edge(10, 11, src_label=0, dst_label=1)
        e2 = graph.add_edge(11, 12, src_label=1, dst_label=2)
        manager.handle_insertions([e1, e2])
        return graph, tree, debi, manager, e1, e2

    def _delete(self, graph, debi, manager, edge_id):
        row = debi.row(edge_id)
        record = graph.delete_edge(edge_id)
        debi.clear_edge(edge_id)
        manager.handle_deletions([(record, row)])

    def test_deleting_leaf_support_clears_upstream(self, path_query):
        graph, tree, debi, manager, e1, e2 = self._build_chain(path_query)
        self._delete(graph, debi, manager, e2)
        assert not debi.get(e1, tree.column_of(1))
        assert not debi.is_root(10)
        assert debi_matches_definition(manager)

    def test_deleting_one_of_two_supports_keeps_bit(self, path_query):
        graph, tree, debi, manager, e1, e2 = self._build_chain(path_query)
        e3 = graph.add_edge(11, 13, src_label=1, dst_label=2)
        manager.handle_insertions([e3])
        self._delete(graph, debi, manager, e2)
        # e3 still supports the (B -> C) requirement.
        assert debi.get(e1, tree.column_of(1))
        assert debi.is_root(10)
        assert debi_matches_definition(manager)

    def test_delete_then_reinsert_restores_bits(self, path_query):
        graph, tree, debi, manager, e1, e2 = self._build_chain(path_query)
        self._delete(graph, debi, manager, e2)
        e_new = graph.add_edge(11, 12, src_label=1, dst_label=2)
        manager.handle_insertions([e_new])
        assert debi.get(e1, tree.column_of(1))
        assert debi.is_root(10)
        assert debi_matches_definition(manager)

    def test_root_cleared_when_last_child_support_gone(self):
        query = QueryGraph.from_edges([(0, 1), (0, 2)], node_labels={0: 0, 1: 1, 2: 2})
        graph = DynamicGraph()
        tree, debi, manager = make_manager(query, graph)
        e1 = graph.add_edge(10, 11, src_label=0, dst_label=1)
        e2 = graph.add_edge(10, 12, src_label=0, dst_label=2)
        manager.handle_insertions([e1, e2])
        assert debi.is_root(10)
        row = debi.row(e2)
        record = graph.delete_edge(e2)
        debi.clear_edge(e2)
        manager.handle_deletions([(record, row)])
        assert not debi.is_root(10)
        assert debi_matches_definition(manager)


class TestRebuildAndDegree:
    def test_rebuild_matches_incremental(self, path_query):
        graph = DynamicGraph()
        _, debi, manager = make_manager(path_query, graph)
        ids = [
            graph.add_edge(10, 11, src_label=0, dst_label=1),
            graph.add_edge(11, 12, src_label=1, dst_label=2),
            graph.add_edge(11, 13, src_label=1, dst_label=2),
        ]
        manager.handle_insertions(ids)
        incremental_bits = {(e, c) for e in ids for c in range(2) if debi.get(e, c)}
        manager.rebuild()
        rebuilt_bits = {(e, c) for e in ids for c in range(2) if debi.get(e, c)}
        assert incremental_bits == rebuilt_bits

    def test_degree_ok_checks_label_counts(self):
        # Query node 1 needs two outgoing label-7 edges.
        query = QueryGraph.from_edges([(0, 1), (1, 2, 7), (1, 3, 7)],
                                      node_labels={0: 0, 1: 1, 2: 2, 3: 2})
        graph = DynamicGraph()
        _, _, manager = make_manager(query, graph)
        graph.add_edge(20, 21, label=7, src_label=1, dst_label=2)
        assert not manager.degree_ok(20, 1)
        graph.add_edge(20, 22, label=7, src_label=1, dst_label=2)
        # Still missing the incoming (0 -> 1) edge requirement.
        assert not manager.degree_ok(20, 1)
        graph.add_edge(19, 20, src_label=0, dst_label=1)
        assert manager.degree_ok(20, 1)

    def test_degree_filter_can_be_disabled(self, path_query):
        graph = DynamicGraph()
        tree = QueryTree(path_query, root=0)
        manager = IndexManager(path_query, tree, graph, DEBI(tree), DefaultMatchDefinition(),
                               use_degree_filter=False)
        assert manager.degree_ok(123, 1)
