"""Unit tests for the stream broker, clocks and the richer sources."""

import threading

import pytest

from repro.streams.broker import (
    POLL_TIMEOUT,
    BrokerClosedError,
    BrokerOverloadError,
    StreamBroker,
)
from repro.streams.clock import VirtualClock, WallClock
from repro.streams.config import StreamConfig, StreamType
from repro.streams.events import StreamEvent
from repro.streams.generator import SnapshotGenerator
from repro.streams.sources import CSVTraceSource, PushSource, ReplaySource
from repro.utils.validation import ConfigurationError


def _insert(i, ts=0.0):
    return StreamEvent.insert(i, i + 1, timestamp=ts)


class TestVirtualClock:
    def test_sleep_advances_instantly(self):
        clock = VirtualClock()
        clock.sleep(2.5)
        assert clock.now() == 2.5
        clock.sleep(0.0)
        assert clock.now() == 2.5

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_wall_clock_monotone(self):
        clock = WallClock()
        a = clock.now()
        clock.sleep(0.0)
        assert clock.now() >= a


class TestBrokerPushMode:
    def test_put_poll_roundtrip_with_arrival_stamps(self):
        clock = VirtualClock()
        broker = StreamBroker(capacity=4, clock=clock)
        broker.put(_insert(1, ts=10.0))
        clock.advance(1.0)
        broker.put(_insert(2, ts=5.0))
        event, arrival = broker.poll(0.0)
        assert (event.src, arrival) == (1, 0.0)
        event, arrival = broker.poll(0.0)
        assert (event.src, arrival) == (2, 1.0)
        # watermark follows event time, not arrival time
        assert broker.watermark == 10.0

    def test_poll_timeout_vs_closed(self):
        broker = StreamBroker(capacity=4, clock=VirtualClock())
        assert broker.poll(0.0) is POLL_TIMEOUT
        assert broker.poll(1.5) is POLL_TIMEOUT
        assert broker.clock.now() == 1.5  # the timed wait advanced virtual time
        broker.close()
        assert broker.poll(0.0) is None
        assert broker.poll(None) is None

    def test_close_drains_buffered_events(self):
        broker = StreamBroker(capacity=4)
        broker.put(_insert(1))
        broker.close()
        event, _ = broker.poll(None)
        assert event.src == 1
        assert broker.poll(None) is None
        with pytest.raises(BrokerClosedError):
            broker.put(_insert(2))

    def test_iteration_yields_until_closed(self):
        broker = StreamBroker(capacity=8)
        for i in range(3):
            broker.put(_insert(i))
        broker.close()
        assert [e.src for e in broker] == [0, 1, 2]

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            StreamBroker(capacity=0)


class TestBrokerBackpressure:
    def test_full_buffer_blocks_producer_until_consumed(self):
        broker = StreamBroker(capacity=2)
        broker.put(_insert(0))
        broker.put(_insert(1))
        third_in = threading.Event()

        def producer():
            broker.put(_insert(2))  # must block until a slot frees up
            third_in.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert not third_in.wait(0.05)
        assert broker.blocked_puts == 1
        event, _ = broker.poll(None)
        assert event.src == 0
        assert third_in.wait(2.0)
        thread.join(2.0)
        assert broker.depth == 2
        assert broker.max_depth == 2

    def test_put_timeout_raises_instead_of_blocking_forever(self):
        broker = StreamBroker(capacity=1, clock=VirtualClock())
        broker.put(_insert(0))
        with pytest.raises(TimeoutError):
            broker.put(_insert(1), timeout=0.5)

    def test_stop_aborts_blocked_producer(self):
        broker = StreamBroker(capacity=1)
        broker.put(_insert(0))
        failed = threading.Event()

        def producer():
            try:
                broker.put(_insert(1))
            except BrokerClosedError:
                failed.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        broker.stop()
        assert failed.wait(2.0)
        thread.join(2.0)
        # Buffered events survive a stop; consumers can still drain them.
        event, _ = broker.poll(None)
        assert event.src == 0
        assert broker.poll(None) is None


class TestBrokerCloseRaces:
    """put()/close() interleavings must resolve deterministically."""

    def test_put_after_close_always_raises(self):
        # Empty, partially full and completely full buffers: a put that
        # starts after close() must raise, never enqueue or block.
        for preload in (0, 1, 2):
            broker = StreamBroker(capacity=2)
            for i in range(preload):
                broker.put(_insert(i))
            broker.close()
            with pytest.raises(BrokerClosedError):
                broker.put(_insert(99))
            assert broker.enqueued == preload
            assert broker.depth == preload

    def test_close_wakes_blocked_producer_into_closed_error(self):
        broker = StreamBroker(capacity=1)
        broker.put(_insert(0))
        outcome: list = []

        def producer():
            try:
                broker.put(_insert(1))
                outcome.append("enqueued")
            except BrokerClosedError:
                outcome.append("closed")

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        while broker.blocked_puts == 0:  # producer is parked on backpressure
            pass
        broker.close()
        thread.join(2.0)
        assert outcome == ["closed"]
        # The blocked event was refused: the ledger never saw it.
        assert broker.enqueued == 1
        assert broker.depth == 1

    def test_counters_consistent_when_consumer_stops_mid_backpressure(self):
        """A consumer abandoning the queue must leave blocked_puts /
        max_depth / depth telling one coherent story."""
        broker = StreamBroker(capacity=2)
        broker.put(_insert(0))
        broker.put(_insert(1))
        consumed, _ = broker.poll(None)  # consumer takes one event...
        assert consumed.src == 0
        parked = threading.Event()

        def producer():
            parked.set()
            broker.put(_insert(2))  # refills the freed slot
            try:
                broker.put(_insert(3), timeout=0.2)  # ...then stops consuming
            except TimeoutError:
                pass

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert parked.wait(2.0)
        thread.join(5.0)
        assert not thread.is_alive()
        stats = broker.stats()
        assert stats["enqueued"] == 3
        assert stats["dequeued"] == 1
        assert stats["depth"] == 2  # == enqueued - dequeued: nothing lost
        assert stats["max_depth"] == 2  # never exceeded capacity
        assert stats["blocked_puts"] == 1  # only the timed-out put waited


class TestBrokerOverloadPolicies:
    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamBroker(capacity=4, overload="drop-newest")

    def test_shed_oldest_drops_stalest_and_keeps_ledger_invariant(self):
        broker = StreamBroker(capacity=3, overload="shed-oldest")
        for i in range(5):
            broker.put(_insert(i))  # never blocks
        stats = broker.stats()
        assert stats["shed_events"] == 2
        assert stats["blocked_puts"] == 0
        # Shed events were enqueued but neither dequeued nor buffered:
        # enqueued - dequeued - shed_events == depth.
        assert stats["enqueued"] - stats["dequeued"] - stats["shed_events"] == stats["depth"]
        broker.close()
        assert [e.src for e in broker] == [2, 3, 4]  # newest survive

    def test_reject_refuses_at_the_door(self):
        broker = StreamBroker(capacity=2, overload="reject")
        broker.put(_insert(0))
        broker.put(_insert(1))
        with pytest.raises(BrokerOverloadError):
            broker.put(_insert(2))
        stats = broker.stats()
        assert stats["rejected_puts"] == 1
        assert stats["enqueued"] == 2
        assert stats["depth"] == 2
        # Overload is transient: space freed by the consumer re-admits.
        broker.poll(None)
        broker.put(_insert(3))
        broker.close()
        assert [e.src for e in broker] == [1, 3]

    def test_block_is_default_policy(self):
        assert StreamBroker(capacity=1).overload == "block"


class TestBrokerPullMode:
    def test_producer_thread_feeds_consumer(self):
        events = [_insert(i, ts=float(i)) for i in range(100)]
        broker = StreamBroker(source=iter(events), capacity=8)
        assert broker.ensure_started()
        assert not broker.ensure_started()  # idempotent
        seen = [e.src for e in broker]
        broker.stop()
        assert seen == [e.src for e in events]
        stats = broker.stats()
        assert stats["enqueued"] == 100 and stats["dequeued"] == 100
        assert stats["max_depth"] <= 8

    def test_push_mode_has_no_producer(self):
        broker = StreamBroker(capacity=4)
        assert not broker.ensure_started()

    def test_stop_mid_stream_unblocks_producer(self):
        events = [_insert(i) for i in range(1000)]
        broker = StreamBroker(source=iter(events), capacity=2)
        broker.ensure_started()
        broker.poll(None)
        broker.stop()  # must join the (blocked) producer without hanging
        assert broker.closed


class TestReplaySource:
    def test_uniform_rate_on_virtual_clock(self):
        clock = VirtualClock()
        source = ReplaySource([_insert(i) for i in range(5)],
                              events_per_second=10.0, clock=clock)
        due = []
        for _ in source:
            due.append(clock.now())
        assert due == pytest.approx([0.0, 0.1, 0.2, 0.3, 0.4])

    def test_timestamp_faithful_speed(self):
        clock = VirtualClock(start=100.0)
        events = [_insert(0, ts=0.0), _insert(1, ts=4.0), _insert(2, ts=6.0)]
        source = ReplaySource(events, speed=2.0, clock=clock)
        due = []
        for _ in source:
            due.append(clock.now())
        assert due == pytest.approx([100.0, 102.0, 103.0])

    def test_replayable(self):
        clock = VirtualClock()
        source = ReplaySource([_insert(i) for i in range(3)],
                              events_per_second=100.0, clock=clock)
        assert [e.src for e in source] == [0, 1, 2]
        assert [e.src for e in source] == [0, 1, 2]
        assert len(source) == 3

    def test_exactly_one_pacing_mode(self):
        with pytest.raises(ConfigurationError):
            ReplaySource([], events_per_second=1.0, speed=1.0)
        with pytest.raises(ConfigurationError):
            ReplaySource([])

    def test_through_broker_stamps_scheduled_arrivals(self):
        clock = VirtualClock()
        source = ReplaySource([_insert(i) for i in range(4)],
                              events_per_second=2.0, clock=clock)
        broker = StreamBroker(source=source, capacity=16, clock=clock)
        broker.ensure_started()
        arrivals = []
        while (item := broker.poll(None)) is not None:
            arrivals.append(item[1])
        broker.stop()
        assert arrivals == pytest.approx([0.0, 0.5, 1.0, 1.5])


class TestCSVTraceSource:
    def test_roundtrip_and_replay(self, tmp_path):
        path = str(tmp_path / "trace.csv")
        events = [
            StreamEvent.insert(1, 2, 3, 4.5, 6, 7),
            StreamEvent.delete(1, 2, 3, 4.5, 6, 7),
        ]
        assert CSVTraceSource.write(path, events) == 2
        source = CSVTraceSource(path)
        assert list(source) == events
        assert list(source) == events  # file re-opened: replayable

    def test_header_after_leading_comments(self, tmp_path):
        # Regression: the header was only skipped as the physical first
        # row, so a comment above it made the file unreadable.
        path = tmp_path / "trace.csv"
        path.write_text("# my trace\n# generated 2026-07-27\n"
                        "kind,src,dst,label,timestamp,src_label,dst_label\n"
                        "insert,1,2,0,0.0,0,0\n")
        events = list(CSVTraceSource(str(path)))
        assert [(e.src, e.dst) for e in events] == [(1, 2)]

    def test_short_rows_and_comments(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("# a comment\ninsert,1,2\nd,3,4,7\n+,5,6,0,2.5\n")
        events = list(CSVTraceSource(str(path)))
        assert [(e.kind.name, e.src, e.dst, e.label, e.timestamp) for e in events] == [
            ("INSERT", 1, 2, 0, 0.0),
            ("DELETE", 3, 4, 7, 0.0),
            ("INSERT", 5, 6, 0, 2.5),
        ]

    def test_malformed_rows_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("frobnicate,1,2\n")
        with pytest.raises(ConfigurationError):
            list(CSVTraceSource(str(path)))
        path.write_text("insert,1\n")
        with pytest.raises(ConfigurationError):
            list(CSVTraceSource(str(path)))
        path.write_text("insert,one,2\n")
        with pytest.raises(ConfigurationError):
            list(CSVTraceSource(str(path)))


class TestPushSource:
    def test_push_then_iterate(self):
        source = PushSource()
        for i in range(3):
            source.push(_insert(i))
        source.close()
        assert [e.src for e in source] == [0, 1, 2]
        assert list(source) == []  # drained, still terminates
        with pytest.raises(ConfigurationError):
            source.push(_insert(9))

    def test_feeds_generator_across_threads(self):
        source = PushSource()
        config = StreamConfig(stream_type=StreamType.INSERT_ONLY, batch_size=2)
        generator = SnapshotGenerator(source, config)

        def producer():
            for i in range(5):
                source.push(_insert(i))
            source.close()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        snapshots = generator.snapshots()
        thread.join(2.0)
        assert [s.insert_batch_size for s in snapshots] == [2, 2, 1]
