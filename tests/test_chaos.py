"""Chaos tests: the self-healing execution layer under injected faults.

The contract under test (see ``repro.core.supervisor``): killed, hung or
message-corrupting pool workers must never change a result.  With a
respawn budget the supervisor replaces the pool and redispatches the
in-flight epochs from their frozen shared-memory segments, so recovery
is bit-identical to a fault-free run; when the budget is exhausted the
engine degrades ``process -> thread -> serial``, still bit-identical.

Faults are injected deterministically through ``repro.utils.faults``:
the plan is armed in the parent, consumed per pool *generation* at
spawn time, and inherited by the forked workers.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.core.engine import EngineConfig, MnemonicEngine
from repro.core.parallel import (
    EnumerationOutcome,
    EpochDeadlineError,
    ParallelConfig,
    PoolBrokenError,
    WorkerStats,
)
from repro.core.registry import MultiQueryEngine
from repro.core.supervisor import FaultPolicy, PoolSupervisor
from repro.datasets import NetFlowConfig, generate_netflow_stream, graph_from_events
from repro.query.generator import QueryGenerator
from repro.streams.config import StreamConfig, StreamType
from repro.streams.events import EventKind, StreamEvent
from repro.utils import faults
from repro.utils.validation import ConfigurationError

pytest.importorskip("multiprocessing.shared_memory")

POOL = ParallelConfig(backend="process", num_workers=2, chunk_size=8)
#: no backoff sleeps in tests; generous budget unless a test overrides it
HEAL = FaultPolicy(max_respawns=4, backoff_initial_seconds=0.0)


@pytest.fixture(autouse=True)
def _disarm_faults():
    """No armed plan may leak between tests, even when one fails."""
    yield
    faults.clear()


def mixed_workload():
    stream = generate_netflow_stream(NetFlowConfig(num_events=900, num_hosts=70, seed=13))
    graph = graph_from_events(stream[:500])
    query = QueryGenerator(graph, seed=2).tree_query(3)
    suffix = stream[500:]
    deletes = [
        StreamEvent.delete(e.src, e.dst, e.label, timestamp=e.timestamp)
        for e in suffix[::2]
        if e.kind is EventKind.INSERT
    ]
    return query, stream[:500], list(suffix) + deletes


def run_engine(query, initial, events, pipeline="pipelined", parallel=None,
               fault=None, batch_size=64):
    config = EngineConfig(
        stream=StreamConfig(batch_size=batch_size, stream_type=StreamType.INSERT_DELETE),
        parallel=parallel or ParallelConfig(),
        pipeline=pipeline,
        fault=fault or FaultPolicy(),
    )
    with MnemonicEngine(query, config=config) as engine:
        if parallel is not None and engine._pool is None:
            pytest.skip("pool could not spawn in this environment")
        engine.load_initial(initial)
        result = engine.run(events)
        stats = engine.fault_stats()
        totals = engine._supervisor.worker_totals
    pos = {e.identity() for s in result.snapshots for e in s.positive_embeddings}
    neg = {e.identity() for s in result.snapshots for e in s.negative_embeddings}
    return pos, neg, stats, totals


@pytest.fixture(scope="module")
def chaos_baseline():
    """Fault-free serial identities every chaos run must reproduce."""
    query, initial, events = mixed_workload()
    pos, neg, _, _ = run_engine(query, initial, events, pipeline="serial")
    assert pos and neg, "chaos baseline must be non-vacuous"
    return query, initial, events, pos, neg


class TestKillRespawnRedispatch:
    @pytest.mark.parametrize("pipeline", ["serial", "pipelined"])
    @pytest.mark.parametrize("kills", [1, 2, 3])
    def test_killed_workers_recover_bit_identically(
        self, chaos_baseline, pipeline, kills
    ):
        query, initial, events, base_pos, base_neg = chaos_baseline
        with faults.injected(faults.FaultPlan(kill_at_unit=2, kills=kills)):
            pos, neg, stats, _ = run_engine(
                query, initial, events, pipeline=pipeline, parallel=POOL, fault=HEAL
            )
        assert pos == base_pos
        assert neg == base_neg
        assert stats["respawns"] >= 1
        assert stats["faults"] >= kills
        assert stats["redispatched_epochs"] >= 1
        assert stats["level"] == "process"
        assert stats["degradations"] == []

    def test_respawn_is_silent_under_budget(self, chaos_baseline):
        """Self-healing is not an error: no RuntimeWarning while the
        budget holds (the legacy warning fires only on degradation)."""
        import warnings

        query, initial, events, base_pos, _ = chaos_baseline
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            with faults.injected(faults.FaultPlan(kill_at_unit=2, kills=1)):
                pos, _, stats, _ = run_engine(
                    query, initial, events, parallel=POOL, fault=HEAL
                )
        assert pos == base_pos
        assert stats["respawns"] == 1


class TestDeadlines:
    def test_hung_worker_cut_off_by_epoch_deadline(self, chaos_baseline):
        """A wedged worker must not deadlock the drain: the deadline
        declares the pool broken and the respawn path recovers."""
        query, initial, events, base_pos, base_neg = chaos_baseline
        policy = FaultPolicy(
            max_respawns=2, backoff_initial_seconds=0.0, epoch_deadline_seconds=0.5
        )
        with faults.injected(
            faults.FaultPlan(hang_at_unit=1, hangs=1, hang_seconds=60.0)
        ):
            pos, neg, stats, _ = run_engine(
                query, initial, events, parallel=POOL, fault=policy
            )
        assert pos == base_pos
        assert neg == base_neg
        assert stats["deadline_expiries"] >= 1
        assert stats["respawns"] >= 1
        assert stats["level"] == "process"

    def test_pool_drain_raises_epoch_deadline_error(self):
        """Pool-level view: a drain past its deadline raises the typed
        subclass (so policy code can tell hangs from crashes)."""
        query, initial, events = mixed_workload()
        config = EngineConfig(parallel=POOL)
        with faults.injected(
            faults.FaultPlan(hang_at_unit=1, hangs=1, hang_seconds=60.0)
        ):
            with MnemonicEngine(query, config=config) as engine:
                pool = engine._pool
                if pool is None:
                    pytest.skip("pool could not spawn in this environment")
                engine.load_initial(initial)
                handle = _dispatch_batch(engine, events)
                with pytest.raises(EpochDeadlineError, match="deadline"):
                    pool.drain(handle, deadline_seconds=0.3)
                assert pool.deadline_expiries == 1
                assert not pool.usable

    def test_deadline_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            FaultPolicy(epoch_deadline_seconds=0.0)


class TestDegradationLadder:
    def test_budget_exhaustion_degrades_to_thread_backend(self, chaos_baseline):
        """More kills than respawns: the run must finish on the thread
        backend with the degradation recorded — and identical results."""
        query, initial, events, base_pos, base_neg = chaos_baseline
        policy = FaultPolicy(max_respawns=1, backoff_initial_seconds=0.0)
        with pytest.warns(RuntimeWarning, match="pool failed"):
            with faults.injected(faults.FaultPlan(kill_at_unit=2, kills=3)):
                pos, neg, stats, _ = run_engine(
                    query, initial, events, parallel=POOL, fault=policy
                )
        assert pos == base_pos
        assert neg == base_neg
        assert stats["level"] == "thread"
        assert stats["degradations"] == ["process->thread"]
        assert stats["respawns"] == 1

    def test_degraded_run_unlinks_every_shared_segment(self, chaos_baseline):
        """No /dev/shm leak across retire + parent-side recovery + degrade.

        Regression test: parent-side epoch recovery used to install the
        worker-side resource-tracker patches in the *parent*, turning
        every later segment unlink into a silent no-op — each degraded
        run then leaked its writer segments until reboot.
        """
        if not os.path.isdir("/dev/shm"):
            pytest.skip("POSIX shared memory is not file-backed here")
        query, initial, events, _, _ = chaos_baseline
        before = {n for n in os.listdir("/dev/shm") if n.startswith("mnemonic_")}
        policy = FaultPolicy(max_respawns=1, backoff_initial_seconds=0.0)
        with pytest.warns(RuntimeWarning, match="pool failed"):
            with faults.injected(faults.FaultPlan(kill_at_unit=2, kills=3)):
                run_engine(query, initial, events, parallel=POOL, fault=policy)
        after = {n for n in os.listdir("/dev/shm") if n.startswith("mnemonic_")}
        assert after - before == set()

    def test_thread_failure_steps_down_to_serial(self, chaos_baseline):
        """The last rung: a thread-backend fault re-runs the phase
        serially and pins the engine to the serial backend."""
        query, initial, events, base_pos, base_neg = chaos_baseline
        policy = FaultPolicy(max_respawns=0)  # first kill exhausts the budget
        with pytest.warns(RuntimeWarning) as captured:
            with faults.injected(
                faults.FaultPlan(kill_at_unit=2, kills=1, thread_failures=1)
            ):
                pos, neg, stats, _ = run_engine(
                    query, initial, events, parallel=POOL, fault=policy
                )
        messages = [str(w.message) for w in captured]
        assert any("pool failed" in m for m in messages)
        assert any("thread-backend enumeration failed" in m for m in messages)
        assert pos == base_pos
        assert neg == base_neg
        assert stats["level"] == "serial"
        assert stats["degradations"] == ["process->thread", "thread->serial"]

    def test_degradation_is_one_way(self):
        supervisor = PoolSupervisor(FaultPolicy(), factory=None)
        assert supervisor.degraded_backend() is None
        assert supervisor.replace(None) is None
        assert supervisor.level == "thread"
        supervisor.thread_backend_failed()
        assert supervisor.level == "serial"
        # Further faults cannot climb back up or step anywhere new.
        supervisor.thread_backend_failed()
        assert supervisor.level == "serial"
        assert supervisor.stats.degradations == [
            "process->thread",
            "thread->serial",
        ]


class TestTornMessages:
    def test_torn_message_breaks_pool_with_diagnosis(self):
        """Pool-level view: a truncated result tuple must surface as
        PoolBrokenError naming the torn write, not as an unpack crash."""
        query, initial, events = mixed_workload()
        config = EngineConfig(parallel=POOL)
        with faults.injected(faults.FaultPlan(torn_at_unit=1, torn_messages=1)):
            with MnemonicEngine(query, config=config) as engine:
                pool = engine._pool
                if pool is None:
                    pytest.skip("pool could not spawn in this environment")
                engine.load_initial(initial)
                handle = _dispatch_batch(engine, events)
                with pytest.raises(PoolBrokenError, match="torn write"):
                    pool.drain(handle)
                assert not pool.usable

    def test_torn_message_recovers_bit_identically(self, chaos_baseline):
        query, initial, events, base_pos, base_neg = chaos_baseline
        with faults.injected(faults.FaultPlan(torn_at_unit=1, torn_messages=1)):
            pos, neg, stats, _ = run_engine(
                query, initial, events, parallel=POOL, fault=HEAL
            )
        assert pos == base_pos
        assert neg == base_neg
        assert stats["faults"] >= 1
        assert stats["respawns"] >= 1


class TestMultiQueryChaos:
    def test_killed_workers_recover_per_query(self):
        _, initial, events = mixed_workload()
        stream = generate_netflow_stream(NetFlowConfig(num_events=900, num_hosts=70, seed=13))
        graph = graph_from_events(stream[:500])
        generator = QueryGenerator(graph, seed=7)
        queries = [generator.tree_query(3), generator.tree_query(4)]

        def run_multi(parallel, fault=None):
            config = EngineConfig(
                stream=StreamConfig(batch_size=64, stream_type=StreamType.INSERT_DELETE),
                parallel=parallel,
                pipeline="pipelined",
                fault=fault or FaultPolicy(),
            )
            with MultiQueryEngine(config=config) as engine:
                ids = [engine.register(q) for q in queries]
                engine.load_initial(initial)
                result = engine.run(events)
                stats = engine.fault_stats()
            identities = {
                qid: {
                    e.identity()
                    for s in result.per_query[qid].snapshots
                    for e in s.positive_embeddings
                }
                for qid in ids
            }
            return identities, stats

        baseline, _ = run_multi(ParallelConfig())
        with faults.injected(faults.FaultPlan(kill_at_unit=2, kills=1)):
            chaotic, stats = run_multi(POOL, fault=HEAL)
        if stats["respawns"] == 0 and stats["faults"] == 0:
            pytest.skip("pool could not spawn in this environment")
        assert chaotic == baseline
        assert stats["respawns"] >= 1
        assert stats["level"] == "process"


class TestWorkerDeathDiagnostics:
    """Satellite: PoolBrokenError must say which worker died and how."""

    def test_dead_worker_message_names_signal_and_pid(self):
        query, initial, events = mixed_workload()
        config = EngineConfig(parallel=POOL)
        with MnemonicEngine(query, config=config) as engine:
            pool = engine._pool
            if pool is None:
                pytest.skip("pool could not spawn in this environment")
            engine.load_initial(initial)
            handle = _dispatch_batch(engine, events)
            pids = [worker.pid for worker in pool._workers]
            for pid in pids:
                os.kill(pid, signal.SIGKILL)
            with pytest.raises(PoolBrokenError) as excinfo:
                pool.drain(handle)
            message = str(excinfo.value)
            assert "SIGKILL" in message, message
            assert any(f"pid {pid}" in message for pid in pids), message

    def test_clean_exit_code_reported_without_signal_name(self):
        from repro.core.parallel import SharedMemoryPool

        class Proc:
            name, pid, exitcode = "worker-3", 4242, 7

            def is_alive(self):
                return False

        detail = SharedMemoryPool._describe_death(Proc())
        assert "exited with code 7" in detail
        assert "worker-3" in detail and "pid 4242" in detail

    def test_signal_death_described_by_name(self):
        from repro.core.parallel import SharedMemoryPool

        class Proc:
            name, pid, exitcode = "worker-0", 99, -signal.SIGTERM

            def is_alive(self):
                return False

        assert "killed by SIGTERM" in SharedMemoryPool._describe_death(Proc())


class TestWorkerStatsAcrossGenerations:
    """Satellite: per-worker accounting must survive a respawn."""

    def test_supervisor_accumulates_totals_per_generation(self):
        supervisor = PoolSupervisor(FaultPolicy(), factory=None)
        gen0 = EnumerationOutcome(
            embeddings=[],
            worker_stats=[
                WorkerStats(worker_id=0, units_processed=5, embeddings_found=2,
                            busy_seconds=0.5, generation=0),
                WorkerStats(worker_id=1, units_processed=3, busy_seconds=0.1,
                            generation=0),
            ],
            wall_seconds=1.0,
        )
        gen1 = EnumerationOutcome(
            embeddings=[],
            worker_stats=[
                WorkerStats(worker_id=0, units_processed=7, embeddings_found=1,
                            busy_seconds=0.2, generation=1),
            ],
            wall_seconds=1.0,
        )
        supervisor.record_outcome(gen0)
        supervisor.record_outcome(gen1)
        supervisor.record_outcome(gen1)  # accumulation, not replacement
        totals = supervisor.worker_totals
        assert totals[(0, 0)] == {"units": 5, "embeddings": 2, "busy_seconds": 0.5}
        assert totals[(0, 1)]["units"] == 3
        assert totals[(1, 0)] == {"units": 14, "embeddings": 2, "busy_seconds": 0.4}

    def test_mean_utilisation_over_mixed_generation_stats(self):
        outcome = EnumerationOutcome(
            embeddings=[],
            worker_stats=[
                WorkerStats(worker_id=0, busy_seconds=0.8, generation=0),
                WorkerStats(worker_id=0, busy_seconds=0.2, generation=1),
                WorkerStats(worker_id=1, busy_seconds=2.0, generation=1),
            ],
            wall_seconds=1.0,
        )
        assert 0.0 <= outcome.mean_utilisation() <= 1.0

    def test_engine_totals_span_generations_after_respawn(self, chaos_baseline):
        """Killing the pool after it completed work must leave both the
        old and the new generation visible in the supervisor's totals."""
        query, initial, events, base_pos, _ = chaos_baseline
        # Batches small enough that generation 0 completes phases before
        # its armed kill (unit 60) fires.
        with faults.injected(faults.FaultPlan(kill_at_unit=60, kills=1)):
            pos, _, stats, totals = run_engine(
                query, initial, events, parallel=POOL, fault=HEAL, batch_size=16
            )
        assert pos == base_pos
        generations = {generation for generation, _ in totals}
        if stats["respawns"] == 0:
            pytest.skip("kill unit was never reached at this workload size")
        assert len(generations) >= 2, totals
        assert all(entry["units"] >= 0 for entry in totals.values())


class TestFaultPolicyValidation:
    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPolicy(max_respawns=-1)

    def test_backoff_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPolicy(backoff_initial_seconds=-0.1)
        with pytest.raises(ConfigurationError):
            FaultPolicy(backoff_multiplier=0.5)
        with pytest.raises(ConfigurationError):
            FaultPolicy(backoff_initial_seconds=1.0, backoff_max_seconds=0.5)

    def test_backoff_schedule_caps(self):
        policy = FaultPolicy(
            max_respawns=5, backoff_initial_seconds=0.1,
            backoff_multiplier=2.0, backoff_max_seconds=0.3,
        )
        assert policy.backoff_seconds(1) == pytest.approx(0.1)
        assert policy.backoff_seconds(2) == pytest.approx(0.2)
        assert policy.backoff_seconds(3) == pytest.approx(0.3)  # capped
        assert policy.backoff_seconds(4) == pytest.approx(0.3)

    def test_default_policy_is_conservative(self):
        policy = FaultPolicy()
        assert policy.max_respawns == 0
        assert policy.epoch_deadline_seconds is None


class TestFaultInjectionFramework:
    def test_budgets_consumed_per_generation(self):
        faults.install(faults.FaultPlan(kill_at_unit=1, kills=2))
        faults.pool_spawning()
        assert faults._ARMED.kill_at_unit == 1  # generation 0 armed
        faults.pool_spawning()
        assert faults._ARMED.kill_at_unit == 1  # generation 1 armed
        faults.pool_spawning()
        assert faults._ARMED.kill_at_unit is None  # budget exhausted
        faults.clear()

    def test_injected_context_clears_on_exit(self):
        with faults.injected(faults.FaultPlan(kill_at_unit=1, kills=1)) as plan:
            assert faults.active() is plan
        assert faults.active() is None
        faults.pool_spawning()  # no plan: must stay disarmed
        assert faults._ARMED is None

    def test_hooks_are_noops_when_disarmed(self):
        faults.clear()
        faults.worker_unit(0)
        message = ("ok",) * 10
        assert faults.worker_message(message) is message
        faults.thread_unit()  # must not raise

    def test_thread_budget_raises_then_exhausts(self):
        faults.install(faults.FaultPlan(thread_failures=1))
        with pytest.raises(faults.InjectedFault):
            faults.thread_unit()
        faults.thread_unit()  # budget spent: no second failure
        faults.clear()


class TestServiceFaultStats:
    def test_service_stats_surface_supervisor_counters(self):
        from repro.core.service import MnemonicService
        from repro.query.query_graph import QueryGraph

        query = QueryGraph.from_edges([(0, 1)], node_labels={0: 1, 1: 2})
        with MnemonicEngine(query, config=EngineConfig()) as engine:
            service = MnemonicService(engine, capacity=16)
            stats = service.stats()
            assert stats["fault_level"] == "process"
            assert stats["fault_respawns"] == 0
            assert stats["fault_degradations"] == 0
            service.close()


def _dispatch_batch(engine, events, count=120):
    """Insert ``count`` events and dispatch one enumeration epoch."""
    from repro.core.enumeration import decompose_batch

    inserts = [e for e in events if e.kind is EventKind.INSERT][:count]
    ids = [engine._insert_event(e) for e in inserts]
    engine.index_manager.handle_insertions(ids)
    context = engine._make_context(batch_edge_ids=set(ids), positive=True)
    units = decompose_batch(context, ids)
    return engine._pool.dispatch({0: context}, {0: units})
