"""Unit tests for the parallel enumeration backends."""

import pytest

from repro.core.engine import EngineConfig, MnemonicEngine
from repro.core.parallel import ParallelConfig
from repro.datasets import NetFlowConfig, generate_netflow_stream, graph_from_events
from repro.query.generator import QueryGenerator
from repro.streams.config import StreamConfig
from repro.utils.validation import ConfigurationError


def build_workload():
    stream = generate_netflow_stream(NetFlowConfig(num_events=600, num_hosts=60, seed=13))
    graph = graph_from_events(stream[:400])
    query = QueryGenerator(graph, seed=2).tree_query(3)
    return query, stream


def run_with(parallel: ParallelConfig):
    query, stream = build_workload()
    config = EngineConfig(stream=StreamConfig(batch_size=128), parallel=parallel)
    engine = MnemonicEngine(query, config=config)
    engine.load_initial(stream[:400])
    result = engine.run(stream[400:])
    return {e.identity() for s in result.snapshots for e in s.positive_embeddings}, result


class TestParallelConfig:
    def test_invalid_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelConfig(backend="gpu")

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelConfig(num_workers=0)
        with pytest.raises(ConfigurationError):
            ParallelConfig(chunk_size=0)


class TestUtilisationEdgeCases:
    """Division edge cases: zero wall-clock windows and empty worker lists."""

    def test_zero_wall_busy_worker_is_fully_utilised(self):
        from repro.core.parallel import WorkerStats

        stats = WorkerStats(worker_id=0, busy_seconds=0.5)
        assert stats.utilisation(0.0) == 1.0
        assert stats.utilisation(-1.0) == 1.0

    def test_zero_wall_idle_worker_is_idle(self):
        from repro.core.parallel import WorkerStats

        stats = WorkerStats(worker_id=0, busy_seconds=0.0)
        assert stats.utilisation(0.0) == 0.0

    def test_utilisation_capped_at_one(self):
        from repro.core.parallel import WorkerStats

        # Busy time can exceed a noisy tiny wall measurement; never report > 1.
        stats = WorkerStats(worker_id=0, busy_seconds=2.0)
        assert stats.utilisation(1.0) == 1.0
        assert stats.utilisation(4.0) == 0.5

    def test_mean_utilisation_empty_worker_list(self):
        from repro.core.parallel import EnumerationOutcome

        outcome = EnumerationOutcome(embeddings=[], worker_stats=[], wall_seconds=0.0)
        assert outcome.mean_utilisation() == 0.0

    def test_mean_utilisation_zero_wall(self):
        from repro.core.parallel import EnumerationOutcome, WorkerStats

        outcome = EnumerationOutcome(
            embeddings=[],
            worker_stats=[
                WorkerStats(worker_id=0, busy_seconds=0.1),
                WorkerStats(worker_id=1, busy_seconds=0.0),
            ],
            wall_seconds=0.0,
        )
        # One fully-utilised worker, one idle: the mean stays in [0, 1].
        assert outcome.mean_utilisation() == 0.5


class TestBackendsAgree:
    @pytest.mark.parametrize("backend,workers", [("thread", 4), ("process", 2)])
    def test_backend_matches_serial(self, backend, workers):
        serial_embeddings, serial_result = run_with(ParallelConfig(backend="serial"))
        other_embeddings, other_result = run_with(
            ParallelConfig(backend=backend, num_workers=workers, chunk_size=8)
        )
        assert other_embeddings == serial_embeddings
        assert serial_result.total_positive == other_result.total_positive

    def test_worker_stats_recorded(self):
        _, result = run_with(ParallelConfig(backend="thread", num_workers=3))
        outcomes = [o for s in result.snapshots for o in s.enumeration_outcomes if o.worker_stats]
        assert outcomes, "expected at least one enumeration outcome with worker stats"
        assert any(w.units_processed > 0 for o in outcomes for w in o.worker_stats)
        assert all(0.0 <= o.mean_utilisation() <= 1.0 for o in outcomes)

    def test_empty_unit_list(self):
        from repro.core.parallel import run_enumeration

        outcome = run_enumeration(None, [], ParallelConfig(backend="thread", num_workers=2))
        assert outcome.embeddings == []
        assert outcome.wall_seconds == 0.0
