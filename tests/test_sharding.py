"""Property tests for the partition layer and the sharded engine.

The sharded engine's correctness case rests on a few load-bearing
invariants, each tested here directly:

1. **Exactly-once placement** — every vertex is owned by exactly one
   shard, the assignment is pure (workers re-derive it) and stable at
   first sight, for both the hash and the label-range strategy.
2. **Global id parity** — the router-level :class:`EdgeIdAllocator`
   hands out the same edge-id sequence as ``DynamicGraph`` consuming
   the same stream, including under delete/recycle churn.  Every DEBI
   row index and embedding identity rests on this.
3. **Multiset preservation** — sharded runs report the same positive
   and negative embedding *multisets* as the single engine over
   randomized insert/delete streams, i.e. cross-shard frontier
   forwarding plus scatter-gather dedup loses nothing and invents
   nothing.
4. **The escape seam** — per-shard pool workers refuse foreign-vertex
   reads (:class:`ShardGuardView`) and the bounced units still produce
   the single-engine answer.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.engine import EngineConfig, MnemonicEngine
from repro.core.parallel import ParallelConfig
from repro.core.shard_router import ShardedEngine
from repro.core.sharding import (
    CrossShardAccess,
    EdgeIdAllocator,
    HashPartitionStrategy,
    LabelRangePartitionStrategy,
    PartitionMap,
    ShardGuardView,
)
from repro.graph.adjacency import DynamicGraph
from repro.query.query_graph import QueryGraph
from repro.storage.config import StorageConfig
from repro.streams.broker import StreamBroker
from repro.streams.events import StreamEvent
from repro.streams.fanout import ShardFanout
from repro.utils.rng import make_rng
from repro.utils.validation import ConfigurationError

# ---------------------------------------------------------------------- strategies
_VERTICES = list(range(8))
_VERTEX_LABEL = {v: v % 3 for v in _VERTICES}

_STRATEGIES = [
    HashPartitionStrategy(),
    LabelRangePartitionStrategy([(0, 0), (1, 2)]),
]

_event_ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "insert", "insert", "delete"]),
        st.sampled_from(_VERTICES),
        st.sampled_from(_VERTICES),
        st.integers(min_value=0, max_value=1),
    ),
    min_size=4,
    max_size=40,
)


def _materialise_events(ops):
    """Turn raw ops into applicable StreamEvents (skip impossible deletes, loops)."""
    from collections import Counter

    live = Counter()
    events = []
    for kind, src, dst, label in ops:
        if src == dst:
            continue
        if kind == "insert":
            events.append(StreamEvent.insert(src, dst, label, 0.0,
                                             _VERTEX_LABEL[src], _VERTEX_LABEL[dst]))
            live[(src, dst, label)] += 1
        elif live[(src, dst, label)] > 0:
            events.append(StreamEvent.delete(src, dst, label))
            live[(src, dst, label)] -= 1
    return events


def _path_query() -> QueryGraph:
    return QueryGraph.from_edges([(0, 1), (1, 2)], node_labels={0: 0, 1: 1, 2: 0})


def _random_events(rng, num_vertices=14, num_ops=120, delete_bias=0.25):
    """A seeded random insert/delete stream (applicable deletes only)."""
    from collections import Counter

    labels = {v: int(v % 3) for v in range(num_vertices)}
    live = Counter()
    events = []
    for _ in range(num_ops):
        src, dst = int(rng.integers(num_vertices)), int(rng.integers(num_vertices))
        if src == dst:
            continue
        label = int(rng.integers(2))
        if rng.random() < delete_bias and live[(src, dst, label)] > 0:
            events.append(StreamEvent.delete(src, dst, label))
            live[(src, dst, label)] -= 1
        else:
            events.append(StreamEvent.insert(src, dst, label, 0.0,
                                             labels[src], labels[dst]))
            live[(src, dst, label)] += 1
    return events


def _run_batched(engine, events, batch_size=16):
    """Feed events through any engine in mixed batches; collect identities."""
    positives, negatives = [], []
    for start in range(0, len(events), batch_size):
        batch = events[start:start + batch_size]
        inserts = [e for e in batch if e.is_insert]
        deletes = [e for e in batch if e.is_delete]
        if inserts:
            positives.extend(e.identity() for e in
                             engine.batch_inserts(inserts).positive_embeddings)
        if deletes:
            negatives.extend(e.identity() for e in
                             engine.batch_deletes(deletes).negative_embeddings)
    return sorted(positives), sorted(negatives)


# ---------------------------------------------------------------------- placement
class TestPartitionPlacement:
    @pytest.mark.parametrize("strategy", _STRATEGIES, ids=["hash", "label_range"])
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 8])
    def test_every_vertex_owned_by_exactly_one_shard(self, strategy, num_shards):
        for vertex in range(200):
            label = vertex % 5
            owners = {
                shard
                for shard in range(num_shards)
                if strategy.shard_of(vertex, label, num_shards) == shard
            }
            assert len(owners) == 1
            assert 0 <= owners.pop() < num_shards

    @pytest.mark.parametrize("strategy", _STRATEGIES, ids=["hash", "label_range"])
    def test_strategy_is_pure(self, strategy):
        for vertex in range(64):
            first = strategy.shard_of(vertex, vertex % 5, 4)
            assert strategy.shard_of(vertex, vertex % 5, 4) == first

    def test_partition_map_caches_first_sight(self):
        pmap = PartitionMap(HashPartitionStrategy(), 4)
        owner = pmap.touch(17, 3)
        assert pmap.owner(17) == owner
        assert pmap.touch(17, 3) == owner
        assert 17 in pmap and len(pmap) == 1
        assert list(pmap.vertices()) == [17]

    def test_partition_map_fallback_matches_unlabelled_strategy(self):
        strategy = LabelRangePartitionStrategy([(1, 5)])
        pmap = PartitionMap(strategy, 4)
        # Never-touched vertices route by the unlabelled default, exactly
        # as DynamicGraph.vertex_label answers 0 for unknown ids.
        assert pmap.owner(99) == strategy.shard_of(99, 0, 4)

    def test_label_range_routes_covered_labels_by_range_index(self):
        strategy = LabelRangePartitionStrategy([(0, 0), (10, 19)])
        assert strategy.shard_of(7, 0, 4) == 0
        assert strategy.shard_of(7, 15, 4) == 1
        # Uncovered labels fall back to the hash placement (total assignment).
        fallback = HashPartitionStrategy()
        assert strategy.shard_of(7, 99, 4) == fallback.shard_of(7, 99, 4)

    def test_inverted_label_range_rejected(self):
        with pytest.raises(ConfigurationError, match="inverted"):
            LabelRangePartitionStrategy([(5, 2)])

    def test_shards_config_validated(self):
        with pytest.raises(ConfigurationError, match="shards"):
            EngineConfig(shards=0)

    def test_sharded_engine_rejects_unsupported_modes(self):
        query = _path_query()
        with pytest.raises(ConfigurationError, match="storage"):
            ShardedEngine(query, config=EngineConfig(
                shards=2, storage=StorageConfig(directory="/tmp/unused")))
        config = EngineConfig(shards=2)
        config.stream.in_memory_window = 100
        with pytest.raises(ConfigurationError, match="external edge store"):
            ShardedEngine(query, config=config)


# ---------------------------------------------------------------------- id parity
class TestEdgeIdAllocatorParity:
    @pytest.mark.parametrize("recycle", [True, False])
    def test_id_sequence_matches_dynamic_graph(self, rng_seed, recycle):
        """The global allocator replays DynamicGraph's id decisions exactly."""
        rng = make_rng(rng_seed)
        graph = DynamicGraph(recycle_edge_ids=recycle)
        allocator = EdgeIdAllocator(recycle_edge_ids=recycle)
        live = []
        for _ in range(300):
            if live and rng.random() < 0.4:
                src, edge_id = live.pop(int(rng.integers(len(live))))
                record = graph.delete_edge(edge_id)
                assert record.edge_id == edge_id
                allocator.release(src, edge_id)
            else:
                src, dst = int(rng.integers(10)), int(rng.integers(10))
                expected = graph.add_edge(src, dst, 0)
                assert allocator.allocate(src) == expected
                live.append((src, expected))
        assert allocator.num_placeholders == graph.num_placeholders

    def test_recycling_pops_newest_first_per_source(self):
        allocator = EdgeIdAllocator()
        first = allocator.allocate(1)
        second = allocator.allocate(1)
        other = allocator.allocate(2)
        allocator.release(1, first)
        allocator.release(1, second)
        assert allocator.allocate(1) == second
        assert allocator.allocate(1) == first
        assert allocator.allocate(2) == other + 1  # shard-2 free list untouched
        assert allocator.recycled == 2


# ---------------------------------------------------------------------- parity
class TestShardedParity:
    @given(_event_ops, st.sampled_from([2, 3]))
    @settings(max_examples=25, deadline=None)
    def test_embedding_multisets_preserved(self, ops, shards):
        events = _materialise_events(ops)
        if not events:
            return
        query = _path_query()
        with MnemonicEngine(query) as single:
            expected = _run_batched(single, events, batch_size=8)
        with ShardedEngine(query, config=EngineConfig(shards=shards)) as sharded:
            actual = _run_batched(sharded, events, batch_size=8)
        assert actual == expected

    @pytest.mark.parametrize("strategy", _STRATEGIES, ids=["hash", "label_range"])
    def test_randomized_stream_parity_both_strategies(self, rng_seed, strategy):
        """Frontier forwarding preserves embedding multisets (seeded stream)."""
        events = _random_events(make_rng(rng_seed))
        query = _path_query()
        with MnemonicEngine(query) as single:
            expected = _run_batched(single, events)
        for shards in (2, 4):
            with ShardedEngine(query, config=EngineConfig(shards=shards),
                               strategy=strategy) as sharded:
                assert _run_batched(sharded, events) == expected, (
                    f"shards={shards} strategy={strategy!r} diverged"
                )

    def test_parity_survives_edge_id_recycling(self, rng_seed):
        """Heavy delete/reinsert churn recycles ids; answers must not move."""
        events = _random_events(make_rng(rng_seed), num_ops=200, delete_bias=0.45)
        query = _path_query()
        with MnemonicEngine(query) as single:
            expected = _run_batched(single, events, batch_size=8)
        with ShardedEngine(query, config=EngineConfig(shards=3)) as sharded:
            assert _run_batched(sharded, events, batch_size=8) == expected
            assert sharded.router.allocator.recycled > 0, (
                "vacuous test: the churn stream never recycled an edge id"
            )


# ---------------------------------------------------------------------- escape seam
class TestEscapeSeam:
    def test_guard_view_blocks_foreign_vertex_reads(self):
        graph = DynamicGraph()
        graph.add_edge(0, 1, 0)
        strategy = HashPartitionStrategy()
        local = strategy.shard_of(0, 0, 2)
        guard = ShardGuardView(graph, strategy, num_shards=2, shard=local)
        assert guard.find_edges(0, 1) == [0]  # owned vertex passes through
        foreign = next(v for v in range(100)
                       if strategy.shard_of(v, 0, 2) != local)
        graph.add_edge(foreign, 1, 0)
        with pytest.raises(CrossShardAccess) as info:
            guard.candidate_pool(foreign, True)
        assert info.value.vertex == foreign
        assert info.value.shard == local
        # Edge-id-keyed reads are never guarded (locally stored rows).
        assert guard.edge(0).src == 0

    def test_process_pool_escape_path_preserves_parity(self, rng_seed):
        """Workers bounce cross-shard chunks; the router re-run stays exact."""
        events = [e for e in _random_events(make_rng(rng_seed), num_vertices=30,
                                            num_ops=400, delete_bias=0.0)]
        query = _path_query()
        with MnemonicEngine(query) as single:
            expected = _run_batched(single, events, batch_size=200)
        config = EngineConfig(
            shards=2,
            parallel=ParallelConfig(backend="process", num_workers=2, chunk_size=4),
        )
        with ShardedEngine(query, config=config) as sharded:
            actual = _run_batched(sharded, events, batch_size=200)
            pooled = all(shard.pool is not None for shard in sharded.shards)
            frontier = sharded.frontier_stats()
        assert actual == expected
        if pooled:
            # With per-shard pools live, hash partitioning at shards=2 on a
            # dense random graph must bounce at least one chunk.
            assert frontier["escaped_units"] > 0


# ---------------------------------------------------------------------- fan-out
class TestShardFanout:
    def test_routing_matches_strategy_and_counts_boundaries(self):
        strategy = HashPartitionStrategy()
        fanout = ShardFanout(strategy, num_shards=2)
        events = [StreamEvent.insert(s, d, 0, 0.0) for s in range(6)
                  for d in range(6) if s != d]
        streams = fanout.fan_out(events)
        assert fanout.stats.events == len(events)
        assert sum(fanout.stats.deliveries) == sum(len(s) for s in streams)
        boundary = sum(
            1 for e in events
            if strategy.shard_of(e.src, 0, 2) != strategy.shard_of(e.dst, 0, 2)
        )
        assert fanout.stats.boundary_events == boundary
        # Replication rule: boundary events land on both shards, the rest on one.
        assert sum(fanout.stats.deliveries) == len(events) + boundary
        assert 1.0 <= fanout.stats.replication_factor() <= 2.0
        # Each sub-stream holds exactly the events its shard must store.
        for shard, sub in enumerate(streams):
            assert all(shard in fanout.route(e) for e in sub)

    def test_fan_out_preserves_per_shard_order(self):
        fanout = ShardFanout(HashPartitionStrategy(), num_shards=3)
        events = [StreamEvent.insert(i, i + 1, 0, float(i)) for i in range(40)]
        for sub in fanout.fan_out(events):
            stamps = [e.timestamp for e in sub]
            assert stamps == sorted(stamps)

    def test_brokers_receive_routed_events(self):
        brokers = [StreamBroker(), StreamBroker()]
        fanout = ShardFanout(HashPartitionStrategy(), num_shards=2, brokers=brokers)
        event = StreamEvent.insert(1, 2, 0, 0.0)
        targets = fanout.deliver(event)
        for shard in range(2):
            expected = 1 if shard in targets else 0
            assert brokers[shard].depth == expected

    def test_configuration_validated(self):
        with pytest.raises(ConfigurationError, match="num_shards"):
            ShardFanout(HashPartitionStrategy(), num_shards=0)
        with pytest.raises(ConfigurationError, match="brokers"):
            ShardFanout(HashPartitionStrategy(), num_shards=2,
                        brokers=[StreamBroker()])
