"""Unit tests for the Mnemonic engine (configuration, streaming loop, metrics)."""

import pytest

from repro.core.engine import EngineConfig, MnemonicEngine, enumerate_static
from repro.core.parallel import ParallelConfig
from repro.graph.adjacency import DynamicGraph
from repro.query.query_graph import QueryGraph
from repro.streams.config import StreamConfig, StreamType
from repro.streams.events import StreamEvent
from repro.utils.validation import ConfigurationError, QueryError


def path_query():
    return QueryGraph.from_edges([(0, 1), (1, 2)], node_labels={0: 0, 1: 1, 2: 2})


def chain_events(base=10):
    return [
        StreamEvent.insert(base, base + 1, src_label=0, dst_label=1),
        StreamEvent.insert(base + 1, base + 2, src_label=1, dst_label=2),
    ]


class TestConstruction:
    def test_invalid_query_rejected(self):
        with pytest.raises(QueryError):
            MnemonicEngine(QueryGraph())

    def test_prepopulated_graph_is_indexed(self):
        graph = DynamicGraph()
        graph.add_edge(10, 11, src_label=0, dst_label=1)
        graph.add_edge(11, 12, src_label=1, dst_label=2)
        engine = MnemonicEngine(path_query(), graph=graph)
        assert engine.debi.total_bits_set() > 0
        # New embedding only when a new edge arrives; existing ones are not re-enumerated.
        result = engine.batch_inserts([StreamEvent.insert(11, 13, src_label=1, dst_label=2)])
        assert result.num_positive == 1

    def test_explicit_root_override(self):
        engine = MnemonicEngine(path_query(), root=2)
        assert engine.tree.root == 2

    def test_index_size_formula(self):
        engine = MnemonicEngine(path_query())
        engine.batch_inserts(chain_events())
        expected = engine.graph.num_placeholders * 2 + engine.graph.num_vertices
        assert engine.index_size_bits() == expected


class TestBatchAPIs:
    def test_batch_inserts_returns_new_embeddings(self):
        engine = MnemonicEngine(path_query())
        result = engine.batch_inserts(chain_events())
        assert result.num_positive == 1
        assert result.num_insertions == 2
        assert result.positive_embeddings[0].positive

    def test_batch_inserts_accepts_tuples(self):
        engine = MnemonicEngine(path_query())
        result = engine.batch_inserts([
            (10, 11, 0, 0.0, 0, 1),
            (11, 12, 0, 0.0, 1, 2),
        ])
        assert result.num_positive == 1

    def test_batch_deletes_returns_negative_embeddings(self):
        engine = MnemonicEngine(path_query())
        engine.batch_inserts(chain_events())
        result = engine.batch_deletes([StreamEvent.delete(11, 12, 0)])
        assert result.num_negative == 1
        assert not result.negative_embeddings[0].positive

    def test_delete_of_unknown_edge_rejected(self):
        engine = MnemonicEngine(path_query())
        with pytest.raises(ConfigurationError):
            engine.batch_deletes([StreamEvent.delete(1, 2, 0)])

    def test_load_initial_does_not_enumerate(self):
        engine = MnemonicEngine(path_query())
        loaded = engine.load_initial(chain_events())
        assert loaded == 2
        assert engine.debi.total_bits_set() > 0
        # The embedding already existed; only genuinely new ones are reported later.
        result = engine.batch_inserts([StreamEvent.insert(20, 21, src_label=0, dst_label=1)])
        assert result.num_positive == 0

    def test_load_initial_rejects_deletes(self):
        engine = MnemonicEngine(path_query())
        with pytest.raises(ConfigurationError):
            engine.load_initial([StreamEvent.delete(1, 2)])

    def test_collect_embeddings_disabled_still_counts(self):
        config = EngineConfig(collect_embeddings=False)
        engine = MnemonicEngine(path_query(), config=config)
        result = engine.batch_inserts(chain_events())
        assert result.num_positive == 1
        assert result.positive_embeddings == []


class TestRunLoop:
    def test_run_insert_only_stream(self):
        engine = MnemonicEngine(
            path_query(),
            config=EngineConfig(stream=StreamConfig(batch_size=2)),
        )
        events = chain_events() + chain_events(base=20) + chain_events(base=30)
        result = engine.run(events)
        assert len(result.snapshots) == 3
        assert result.total_positive == 3
        assert result.total_negative == 0
        assert result.total_seconds >= 0.0

    def test_run_insert_delete_stream(self):
        engine = MnemonicEngine(
            path_query(),
            config=EngineConfig(
                stream=StreamConfig(stream_type=StreamType.INSERT_DELETE, batch_size=10)
            ),
        )
        events = chain_events() + [StreamEvent.delete(10, 11, 0)]
        result = engine.run(events)
        # Insert and its deletion cancel inside one batch: the embedding never materialises.
        assert result.total_positive == 0

        engine2 = MnemonicEngine(
            path_query(),
            config=EngineConfig(
                stream=StreamConfig(stream_type=StreamType.INSERT_DELETE, batch_size=2)
            ),
        )
        result2 = engine2.run(events)
        assert result2.total_positive == 1
        assert result2.total_negative == 1
        assert len(result2.net_result_set()) == 0

    def test_run_sliding_window_stream(self):
        engine = MnemonicEngine(
            path_query(),
            config=EngineConfig(
                stream=StreamConfig(stream_type=StreamType.SLIDING_WINDOW, window=10.0, stride=5.0)
            ),
        )
        events = [
            StreamEvent.insert(10, 11, timestamp=0.0, src_label=0, dst_label=1),
            StreamEvent.insert(11, 12, timestamp=1.0, src_label=1, dst_label=2),
            StreamEvent.insert(20, 21, timestamp=30.0, src_label=0, dst_label=1),
            StreamEvent.insert(21, 22, timestamp=31.0, src_label=1, dst_label=2),
            StreamEvent.insert(40, 41, timestamp=60.0, src_label=0, dst_label=1),
        ]
        result = engine.run(events)
        assert result.total_positive == 2
        # The first chain must have been destroyed when it slid out of the window.
        assert result.total_negative >= 1
        assert engine.graph.num_edges < 5

    def test_snapshot_results_track_footprint(self):
        engine = MnemonicEngine(path_query(), config=EngineConfig(stream=StreamConfig(batch_size=2)))
        result = engine.run(chain_events())
        snap = result.snapshots[0]
        assert snap.live_edges == 2
        assert snap.edge_placeholders == 2
        assert snap.debi_bits >= 2
        assert snap.total_seconds >= 0
        assert snap.total_embeddings == snap.num_positive

    def test_memory_report_and_reset(self):
        engine = MnemonicEngine(path_query())
        engine.batch_inserts(chain_events())
        report = engine.memory_report()
        assert report["live_edges"] == 2
        assert report["debi_bits_set"] > 0
        engine.reset_index()
        assert engine.debi.total_bits_set() == report["debi_bits_set"]

    def test_parallel_engine_configuration(self):
        config = EngineConfig(parallel=ParallelConfig(backend="thread", num_workers=2))
        engine = MnemonicEngine(path_query(), config=config)
        result = engine.batch_inserts(chain_events())
        assert result.num_positive == 1


class TestEnumerateStatic:
    def test_matches_manual_engine_run(self):
        events = chain_events() + chain_events(base=20)
        static = enumerate_static(path_query(), events)
        engine = MnemonicEngine(path_query())
        incremental = []
        for event in events:
            incremental.extend(engine.batch_inserts([event]).positive_embeddings)
        assert {e.node_map for e in static} == {e.node_map for e in incremental}
