#!/usr/bin/env python
"""A live matching service: events pushed in, matches polled out.

The batch engines consume a whole stream in one blocking ``run()`` call.
This example shows the service-shaped API a live deployment uses
instead, built from three pieces of the streaming service layer:

1. :class:`~repro.core.service.MnemonicService` — ``submit()`` events as
   they happen, ``poll()`` for results; a bounded broker gives the
   service backpressure and stamps every event's arrival time;
2. adaptive batching — ``max_batch_delay`` flushes a small batch when
   the stream goes quiet, so latency stays bounded at trickle load
   while bursts still fill ``batch_size`` batches;
3. end-to-end latency accounting — every result reports how long its
   events waited between arrival and their matches being available.

A :class:`~repro.streams.clock.VirtualClock` drives the demo so it runs
deterministically and instantly; swap it for the default wall clock (or
just omit ``clock=``) in a real deployment.

Run with::

    python examples/live_service.py
"""

from repro import (
    EngineConfig,
    MnemonicEngine,
    MnemonicService,
    QueryGraph,
    StreamConfig,
    StreamEvent,
    VirtualClock,
)

#: node labels of this example's schema
USER, HOST, SERVICE = 0, 1, 2


def build_query() -> QueryGraph:
    """The pattern: a USER logs into a HOST that then talks to a SERVICE."""
    return QueryGraph.from_edges(
        [(0, 1), (1, 2)], node_labels={0: USER, 1: HOST, 2: SERVICE}
    )


def login(user: int, host: int, at: float) -> StreamEvent:
    return StreamEvent.insert(user, host, timestamp=at, src_label=USER, dst_label=HOST)


def flow(host: int, service: int, at: float) -> StreamEvent:
    return StreamEvent.insert(host, service, timestamp=at,
                              src_label=HOST, dst_label=SERVICE)


def report(results) -> None:
    for result in results:
        latency = result.ingest_latency_seconds
        latency_note = f"{latency * 1e3:.0f} ms" if latency is not None else "n/a"
        print(f"  snapshot #{result.number}: {result.num_insertions} events, "
              f"+{result.num_positive} matches, latency {latency_note}")
        for embedding in result.positive_embeddings:
            print("    match:", embedding.nodes())


def main() -> None:
    clock = VirtualClock()
    config = EngineConfig(
        stream=StreamConfig(batch_size=64, max_batch_delay=0.5),
    )
    with MnemonicEngine(build_query(), config=config) as engine:
        service = MnemonicService(engine, capacity=1024, clock=clock)

        # --- a burst of traffic arrives ------------------------------------
        print("burst: three logins and one service flow")
        service.submit([login(100, 200, 0.0), login(101, 200, 0.1),
                        login(102, 201, 0.2), flow(200, 300, 0.3)])
        # Nothing is processed yet: 4 events sit below the 64-event cap and
        # the 500 ms batch delay has not expired.
        print("  immediate poll:", service.poll(), "(batch still open)")

        # --- the stream goes quiet: the delay flushes the partial batch ----
        clock.advance(0.5)
        print("after 500 ms of silence:")
        report(service.poll())

        # --- a straggler completes a second pattern instance ---------------
        print("straggler: host 201 reaches the service")
        service.submit(flow(201, 300, 1.0))
        print("drain:")
        report(service.drain())

        print("service stats:", service.stats())
        final = service.close()
        print("closed with", len(final), "trailing results; "
              f"watermark {service.watermark}")


if __name__ == "__main__":
    main()
