#!/usr/bin/env python
"""A tour of the match-definition API: one stream, five matching semantics.

The same NetFlow-like stream and the same query are processed with
every matching variant the paper evaluates — isomorphism, homomorphism,
time-constrained isomorphism, dual simulation and strong simulation —
to show that switching semantics is a one-line change for the user.

Run with::

    python examples/programmability_tour.py
"""

import time

from repro import MnemonicEngine
from repro.datasets import NetFlowConfig, generate_netflow_stream, graph_from_events
from repro.matchers import (
    HomomorphismMatcher,
    IsomorphismMatcher,
    TemporalIsomorphismMatcher,
    dual_simulation_from_debi,
    strong_simulation,
)
from repro.query.generator import QueryGenerator


def main() -> None:
    stream = generate_netflow_stream(NetFlowConfig(num_events=4000, num_hosts=400, seed=77))
    graph = graph_from_events(stream)
    query = QueryGenerator(graph, seed=5).tree_query(4, with_timestamps=True)

    print("query edges:")
    for edge in query.edges():
        print(f"  u{edge.src} -> u{edge.dst}  label={edge.label}  time_rank={edge.time_rank}")
    print()

    # --- embedding-producing variants --------------------------------------
    for matcher in (IsomorphismMatcher(), HomomorphismMatcher(), TemporalIsomorphismMatcher()):
        engine = MnemonicEngine(query, match_def=matcher)
        start = time.perf_counter()
        result = engine.batch_inserts(stream)
        elapsed = time.perf_counter() - start
        print(f"{matcher.name:<24} embeddings={result.num_positive:<8} "
              f"work_units={result.work_units:<6} runtime={elapsed:.2f}s")

    # --- relation-producing variants (simulation family) -------------------
    engine = MnemonicEngine(query, match_def=HomomorphismMatcher())
    engine.batch_inserts(stream)
    start = time.perf_counter()
    relation = dual_simulation_from_debi(engine)
    elapsed = time.perf_counter() - start
    sizes = {u: len(vs) for u, vs in relation.items()}
    print(f"{'dual-simulation':<24} relation sizes={sizes} runtime={elapsed:.2f}s")

    start = time.perf_counter()
    balls = strong_simulation(engine.graph, query)
    elapsed = time.perf_counter() - start
    print(f"{'strong-simulation':<24} matching balls={len(balls)} runtime={elapsed:.2f}s")


if __name__ == "__main__":
    main()
