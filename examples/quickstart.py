#!/usr/bin/env python
"""Quickstart: incremental subgraph isomorphism on a streaming graph.

This example walks through the whole Mnemonic workflow on a tiny
hand-built stream:

1. define a query graph (a labelled path A -> B -> C);
2. create an engine with a stream configuration (batch size 4);
3. push insertion and deletion batches;
4. inspect the embeddings that each batch creates or destroys.

Run with::

    python examples/quickstart.py
"""

from repro import EngineConfig, MnemonicEngine, QueryGraph, StreamConfig, StreamEvent
from repro.matchers import IsomorphismMatcher

# Node labels used by this example's schema.
USER, HOST, SERVICE = 0, 1, 2


def build_query() -> QueryGraph:
    """The pattern: a USER logs into a HOST that then talks to a SERVICE."""
    query = QueryGraph()
    query.add_node(0, USER)
    query.add_node(1, HOST)
    query.add_node(2, SERVICE)
    query.add_edge(0, 1)   # user -> host   (any edge label)
    query.add_edge(1, 2)   # host -> service
    query.validate()
    return query


def main() -> None:
    query = build_query()
    engine = MnemonicEngine(
        query,
        match_def=IsomorphismMatcher(),
        config=EngineConfig(stream=StreamConfig(batch_size=4)),
    )

    print("Query tree root:", engine.tree.root)
    print("DEBI columns   :", engine.tree.num_columns)

    # --- batch 1: two user->host logins and one host->service flow ---------
    batch1 = [
        StreamEvent.insert(100, 200, src_label=USER, dst_label=HOST),
        StreamEvent.insert(101, 200, src_label=USER, dst_label=HOST),
        StreamEvent.insert(200, 300, src_label=HOST, dst_label=SERVICE),
    ]
    result1 = engine.batch_inserts(batch1)
    print(f"\nbatch 1: +{result1.num_positive} embeddings "
          f"({result1.work_units} work units, "
          f"{result1.filter_traversals} filtering traversals)")
    for embedding in result1.positive_embeddings:
        print("   new match:", embedding.nodes())

    # --- batch 2: a second service connection creates two more matches -----
    result2 = engine.batch_inserts([
        StreamEvent.insert(200, 301, src_label=HOST, dst_label=SERVICE),
    ])
    print(f"\nbatch 2: +{result2.num_positive} embeddings")
    for embedding in result2.positive_embeddings:
        print("   new match:", embedding.nodes())

    # --- batch 3: the first login is retracted ------------------------------
    result3 = engine.batch_deletes([StreamEvent.delete(100, 200)])
    print(f"\nbatch 3: -{result3.num_negative} embeddings")
    for embedding in result3.negative_embeddings:
        print("   destroyed :", embedding.nodes())

    print("\nFinal footprint:", engine.memory_report())


if __name__ == "__main__":
    main()
