#!/usr/bin/env python
"""Cyber-attack pattern detection over a sliding window (LANL-style workload).

The paper motivates Mnemonic with cyber forensics: repeated events between
the same hosts must be kept apart (a login *after* a compromise is not the
same as one before), and the search context is a sliding time window.

This example:

1. generates a synthetic LANL-like event stream (typed entities, three
   edge labels, timestamps with a diurnal profile);
2. defines a *time-constrained* lateral-movement pattern: a user
   authenticates to host A, host A connects to host B, and host B then
   starts an outbound flow — in that temporal order;
3. runs the engine with a sliding window so that stale events age out;
4. reports matches per window and the memory footprint over time.

Run with::

    python examples/cyber_attack_detection.py
"""

from repro import EngineConfig, MnemonicEngine, QueryGraph, StreamConfig
from repro.datasets import LANLConfig, generate_lanl_stream
from repro.matchers import TemporalIsomorphismMatcher
from repro.streams.config import StreamType

# LANL-style schema used by the generator: node types 0..5, edge labels 0..2.
AUTH, CONNECT, FLOW = 0, 1, 2


def lateral_movement_query() -> QueryGraph:
    """user -> hostA -> hostB -> external, in temporal order.

    Node types are constrained (user, host, host, external); the edge
    labels are left as wildcards so that the pattern stays findable on
    the small synthetic stream — on a real LANL trace one would pin them
    to AUTH / CONNECT / FLOW respectively.
    """
    query = QueryGraph()
    query.add_node(0, 0)   # user entity (type 0)
    query.add_node(1, 1)   # host A (type 1)
    query.add_node(2, 1)   # host B (type 1)
    query.add_node(3, 2)   # external service (type 2)
    query.add_edge(0, 1, time_rank=0)
    query.add_edge(1, 2, time_rank=1)
    query.add_edge(2, 3, time_rank=2)
    query.validate()
    return query


def main() -> None:
    stream = generate_lanl_stream(LANLConfig(num_events=8000, num_entities=400, seed=97))
    query = lateral_movement_query()

    window = 24 * 60.0        # one synthetic "day"
    stride = 6 * 60.0         # advance six synthetic hours per snapshot
    engine = MnemonicEngine(
        query,
        match_def=TemporalIsomorphismMatcher(),
        config=EngineConfig(
            stream=StreamConfig(stream_type=StreamType.SLIDING_WINDOW,
                                window=window, stride=stride),
        ),
    )

    print(f"events={len(stream)}  window={window:.0f}  stride={stride:.0f}")
    print(f"{'snap':>4}  {'inserts':>8}  {'expired':>8}  {'new':>6}  {'gone':>6}  "
          f"{'live edges':>10}  {'placeholders':>12}")

    total_alerts = 0
    generator = engine.initialize_stream(stream)
    for snapshot in generator:
        result = engine.process_snapshot(snapshot)
        total_alerts += result.num_positive
        print(f"{snapshot.number:>4}  {result.num_insertions:>8}  {result.num_deletions:>8}  "
              f"{result.num_positive:>6}  {result.num_negative:>6}  "
              f"{result.live_edges:>10}  {result.edge_placeholders:>12}")

    print(f"\ntotal time-ordered lateral-movement matches: {total_alerts}")
    stats = engine.graph.stats
    print(f"edge-slot recycling rate: {stats.recycle_rate:.1%} "
          f"({stats.recycled} of {stats.inserts} insertions reused a slot)")


if __name__ == "__main__":
    main()
