#!/usr/bin/env python
"""Self-healing under fire: worker kills, load shedding, fault counters.

The other service examples assume a well-behaved world.  This one breaks
things on purpose, using the same deterministic chaos harness the test
suite (``tests/test_chaos.py``) and the ``self_healing_parity`` perf
gate are built on, and shows the two knobs a deployment tunes:

1. :class:`~repro.core.supervisor.FaultPolicy` — the engine's respawn
   budget.  A :class:`~repro.utils.faults.FaultPlan` SIGKILLs a pool
   worker mid-enumeration; the supervisor respawns the pool, redispatches
   the interrupted epoch from the frozen shared-memory snapshot, and the
   results come out bit-identical to a fault-free run.  The
   ``fault_*`` counters in ``service.stats()`` tell the story.
2. ``overload="shed-oldest"`` — the broker's full-buffer policy.  When
   producers outrun the engine, the oldest queued events are dropped
   instead of blocking the producer; ``shed_events`` counts the loss so
   dashboards can see it.

Run with::

    python examples/chaos_service.py
"""

from repro import (
    EngineConfig,
    MnemonicEngine,
    MnemonicService,
    ParallelConfig,
    StreamConfig,
    VirtualClock,
)
from repro.core.supervisor import FaultPolicy
from repro.datasets import NetFlowConfig, generate_netflow_stream, graph_from_events
from repro.query.generator import QueryGenerator
from repro.utils import faults


def build_workload():
    """A NetFlow stream, its warm-up prefix, and a 3-edge tree query."""
    stream = generate_netflow_stream(
        NetFlowConfig(num_events=600, num_hosts=60, seed=13)
    )
    initial, live = stream[:300], stream[300:]
    query = QueryGenerator(graph_from_events(initial), seed=2).tree_query(3)
    return query, initial, live


def matches_of(results) -> set:
    return {
        embedding.identity()
        for result in results
        for embedding in result.positive_embeddings
    }


def run_stream(query, initial, live, parallel=None, fault=None) -> tuple[set, dict]:
    """Feed ``live`` through a service; return match identities and stats."""
    config = EngineConfig(
        stream=StreamConfig(batch_size=64),
        parallel=parallel or ParallelConfig(),
        pipeline="pipelined" if parallel else "serial",
        fault=fault or FaultPolicy(),
    )
    with MnemonicEngine(query, config=config) as engine:
        engine.load_initial(initial)
        service = MnemonicService(engine, capacity=1024, clock=VirtualClock())
        service.submit(live)
        results = service.drain()
        stats = service.stats()
        service.close()
    return matches_of(results), stats


def main() -> None:
    query, initial, live = build_workload()

    # --- baseline: a fault-free serial run is the ground truth ----------
    baseline, _ = run_stream(query, initial, live)
    print(f"baseline (serial, fault-free): {len(baseline)} matches")

    # --- chaos: SIGKILL a pool worker mid-enumeration -------------------
    # The plan is armed before the engine spawns its pool, so the forked
    # workers inherit it; the second enumeration unit in the doomed
    # worker pulls the trigger.  The FaultPolicy budget lets the
    # supervisor respawn twice with no backoff sleeps.
    plan = faults.FaultPlan(kill_at_unit=2, kills=1)
    policy = FaultPolicy(max_respawns=2, backoff_initial_seconds=0.0)
    pool = ParallelConfig(backend="process", num_workers=2, chunk_size=32)
    with faults.injected(plan):
        healed, stats = run_stream(query, initial, live, parallel=pool, fault=policy)

    print(f"chaos run (1 worker killed):   {len(healed)} matches, "
          f"bit-identical={healed == baseline}")
    print("  fault counters:",
          {k: v for k, v in stats.items() if k.startswith("fault_")})
    if stats["fault_respawns"] == 0:
        print("  (no pool in this environment: the run fell back to a "
              "serial path and the kill never fired)")

    # --- overload: shed-oldest instead of blocking the producer ---------
    clock = VirtualClock()
    config = EngineConfig(stream=StreamConfig(batch_size=64))
    with MnemonicEngine(query, config=config) as engine:
        engine.load_initial(initial)
        service = MnemonicService(
            engine, capacity=8, clock=clock, overload="shed-oldest"
        )
        for event in live:  # burst: far more events than the buffer holds
            service.submit(event)
        service.drain()
        stats = service.stats()
        service.close()
    print(f"shed-oldest burst: capacity 8, {len(live)} events submitted, "
          f"shed_events={stats['shed_events']}, "
          f"enqueued={stats['enqueued']}")


if __name__ == "__main__":
    main()
