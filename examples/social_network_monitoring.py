#!/usr/bin/env python
"""Monitoring a social-activity stream with a custom match definition.

This example shows the programmability story of the paper (Section III):
a user only writes a small ``MatchDefinition`` to get a new matching
semantics, while snapshotting, DEBI maintenance, masking and parallel
enumeration stay in the engine.

Scenario: an LSBench-like activity stream (insertions plus explicit
deletions).  We look for "engagement triangles" — user A interacts with
B, B with C, and C back with A — but we only care about *recent, heavy*
interactions, so the custom matcher restricts candidate edges to a set
of "engagement" activity types and the enumerator definition stays the
standard homomorphism.  Positive and negative (retracted) matches are
reported per batch, and the run is parallelised with a thread pool.

Run with::

    python examples/social_network_monitoring.py
"""

from repro import EngineConfig, MnemonicEngine, ParallelConfig, QueryGraph, StreamConfig
from repro.core.api import MatchDefinition, default_edge_matcher
from repro.datasets import LSBenchConfig, generate_lsbench_stream
from repro.streams.config import StreamType

#: activity labels (out of the 45 LSBench-style labels) that count as engagement
ENGAGEMENT_LABELS = frozenset({0, 1, 2, 3, 4, 5, 6, 7})


class EngagementMatcher(MatchDefinition):
    """Homomorphic matching restricted to engagement-type activities."""

    name = "engagement-homomorphism"
    injective = False

    def edge_matcher(self, query, graph, q_edge, d_edge):
        if d_edge.label not in ENGAGEMENT_LABELS:
            return False
        return default_edge_matcher(query, graph, q_edge, d_edge)


def engagement_triangle() -> QueryGraph:
    query = QueryGraph()
    query.add_edge(0, 1)
    query.add_edge(1, 2)
    query.add_edge(2, 0)
    query.validate()
    return query


def main() -> None:
    stream = generate_lsbench_stream(
        LSBenchConfig(num_events=12_000, num_users=900, seed=123,
                      prefix_fraction=0.8, delete_fraction=0.2)
    )
    engine = MnemonicEngine(
        engagement_triangle(),
        match_def=EngagementMatcher(),
        config=EngineConfig(
            stream=StreamConfig(stream_type=StreamType.INSERT_DELETE, batch_size=1024),
            parallel=ParallelConfig(backend="thread", num_workers=4),
        ),
    )

    print(f"streaming {len(stream)} activity events in batches of 1024\n")
    print(f"{'batch':>5}  {'ins':>5}  {'del':>5}  {'new triangles':>14}  {'retracted':>10}  "
          f"{'filter ms':>9}  {'enum ms':>8}")

    totals = {"positive": 0, "negative": 0}
    for snapshot in engine.initialize_stream(stream):
        result = engine.process_snapshot(snapshot)
        totals["positive"] += result.num_positive
        totals["negative"] += result.num_negative
        print(f"{snapshot.number:>5}  {result.num_insertions:>5}  {result.num_deletions:>5}  "
              f"{result.num_positive:>14}  {result.num_negative:>10}  "
              f"{result.filter_seconds * 1e3:>9.1f}  {result.enumerate_seconds * 1e3:>8.1f}")

    print(f"\ntotal new engagement triangles : {totals['positive']}")
    print(f"total retracted triangles      : {totals['negative']}")
    print(f"DEBI bits currently set        : {engine.debi.total_bits_set()}")
    print(f"index size (paper formula)     : {engine.index_size_bits() / 8 / 1024:.1f} KiB")


if __name__ == "__main__":
    main()
