#!/usr/bin/env python
"""A multi-query matching service: many standing queries, one stream.

The scenario behind the ROADMAP north-star: a monitoring service where
every tenant registers their own standing pattern over the same live
traffic graph.  Instead of running one engine per tenant — N graph
copies, N index passes, N snapshot exports per batch — a single
:class:`~repro.core.registry.MultiQueryEngine` evaluates all of them:

* the graph is mutated once per batch and shared by every query,
* each query keeps its own DEBI / matching order / match definition,
  so results are exactly what a dedicated engine would produce,
* raw adjacency scans are shared across queries that anchor at the
  same vertex and edge label,
* per-query matches are routed to per-tenant sinks.

The example also exercises the service lifecycle: one tenant registers
*mid-stream* (their query is indexed against the live graph before
their first batch) and another unregisters early, walking away with
everything their query produced while registered.

Run with::

    python examples/multi_query_service.py
"""

from repro import EngineConfig, MultiQueryEngine, QueryGraph, StreamConfig
from repro.core.results import CollectingSink
from repro.datasets import NetFlowConfig, generate_netflow_stream

#: NetFlow-ish labels: 0 = ssh, 1 = http, 2 = dns (labels are just ints here)
SSH, HTTP, DNS = 0, 1, 2


def lateral_movement_query():
    """host -> host -> host over ssh: the classic lateral-movement chain."""
    return QueryGraph.from_edges([(0, 1, SSH), (1, 2, SSH)])


def fan_out_query():
    """One host contacting three others over ssh (a scanning pattern)."""
    return QueryGraph.from_edges([(0, 1, SSH), (0, 2, SSH), (0, 3, SSH)])


def callback_query():
    """A contacts B, and B calls straight back — over any protocol."""
    return QueryGraph.from_edges([(0, 1), (1, 0)])


def main():
    stream = generate_netflow_stream(
        NetFlowConfig(num_events=1200, num_hosts=120, num_protocols=3, seed=7)
    )
    initial, live = stream[:800], stream[800:]

    engine = MultiQueryEngine(
        config=EngineConfig(stream=StreamConfig(batch_size=100))
    )
    with engine:
        sink = CollectingSink()
        tenants = {
            engine.register(lateral_movement_query(), name="lateral", sink=sink): "lateral",
            engine.register(fan_out_query(), name="fan-out", sink=sink): "fan-out",
        }
        engine.load_initial(initial)

        print(f"serving {len(engine.registry)} standing queries over one graph\n")

        batches = engine.initialize_stream(list(live))
        late_tenant = None
        for i, snapshot in enumerate(batches):
            result = engine.process_snapshot(snapshot)
            found = {
                tenants[qid]: r.num_positive
                for qid, r in result.per_query.items()
                if qid in tenants
            }
            print(f"batch {snapshot.number}: +{result.num_insertions} edges, "
                  f"matches {found}")

            if i == 1:
                # A new tenant shows up mid-stream; their query is indexed
                # against the live graph before their next batch.
                late_tenant = engine.register(callback_query(), name="callback", sink=sink)
                tenants[late_tenant] = "callback"
                print("  -> tenant 'callback' registered mid-stream")
            if i == 2:
                dropped = next(q for q, n in tenants.items() if n == "fan-out")
                history = engine.unregister(dropped)
                del tenants[dropped]
                print(f"  -> tenant 'fan-out' unregistered "
                      f"(leaves with {history.total_positive} matches)")

        print("\nfinal per-tenant match counts:")
        for qid, name in sorted(tenants.items()):
            print(f"  {name:>8}: {len(sink.results.get(qid, []))} embeddings")
        print(f"\nshared candidate scans for the whole run: "
              f"{sum(rr.total_candidates_scanned for rr in (engine.registry.get(q).run_result for q in tenants))}")


if __name__ == "__main__":
    main()
