#!/usr/bin/env python
"""Sharded execution: partition one engine's state over N engine shards.

This example shows the partition-parallel deployment shape end to end:

1. build a random login/flow stream and fan it out with ``ShardFanout``
   — the same pluggable ``PartitionStrategy`` the engine uses, applied
   at the ingest tier, so each shard's sub-stream is self-contained;
2. run a ``ShardedEngine`` with 3 shards next to a plain
   ``MnemonicEngine`` on the identical stream;
3. verify the results are **bit-identical** (the design's hard
   invariant: sharding splits capacity, never answers);
4. inspect the per-shard work split and the cross-shard frontier
   traffic that the scatter-gather path paid for it.

Run with::

    python examples/sharded_service.py
"""

import random

from repro import (
    EngineConfig,
    HashPartitionStrategy,
    MnemonicEngine,
    QueryGraph,
    ShardedEngine,
    StreamEvent,
)
from repro.streams import ShardFanout

USER, HOST, SERVICE = 0, 1, 2
NUM_SHARDS = 3


def build_query() -> QueryGraph:
    """The quickstart pattern: USER -> HOST -> SERVICE."""
    query = QueryGraph()
    query.add_node(0, USER)
    query.add_node(1, HOST)
    query.add_node(2, SERVICE)
    query.add_edge(0, 1)
    query.add_edge(1, 2)
    query.validate()
    return query


def build_stream(rng: random.Random, num_events: int = 400) -> list[StreamEvent]:
    """Random logins and flows, with ~20% of inserts later retracted."""
    label_of = lambda v: USER if v < 40 else HOST if v < 70 else SERVICE  # noqa: E731
    events: list[StreamEvent] = []
    live: list[StreamEvent] = []
    for _ in range(num_events):
        if live and rng.random() < 0.2:
            victim = live.pop(rng.randrange(len(live)))
            events.append(StreamEvent.delete(victim.src, victim.dst, victim.label))
            continue
        if rng.random() < 0.5:
            src, dst = rng.randrange(0, 40), rng.randrange(40, 70)      # login
        else:
            src, dst = rng.randrange(40, 70), rng.randrange(70, 100)    # flow
        event = StreamEvent.insert(src, dst, 0, 0.0,
                                   src_label=label_of(src), dst_label=label_of(dst))
        events.append(event)
        live.append(event)
    return events


def run_engine(engine, events, batch_size: int = 64):
    """Feed mixed batches; return (positive identities, negative identities)."""
    positives, negatives = set(), set()
    for start in range(0, len(events), batch_size):
        batch = events[start:start + batch_size]
        inserts = [e for e in batch if e.is_insert]
        deletes = [e for e in batch if e.is_delete]
        if inserts:
            result = engine.batch_inserts(inserts)
            positives.update(e.identity() for e in result.positive_embeddings)
        if deletes:
            result = engine.batch_deletes(deletes)
            negatives.update(e.identity() for e in result.negative_embeddings)
    return positives, negatives


def main() -> None:
    query = build_query()
    events = build_stream(random.Random(7))

    # --- the ingest tier: split the stream the way the engine will ---------
    fanout = ShardFanout(HashPartitionStrategy(), NUM_SHARDS)
    fanout.fan_out(events)
    print(f"stream: {fanout.stats.events} events, "
          f"{fanout.stats.boundary_events} cross boundaries, "
          f"replication factor {fanout.stats.replication_factor():.2f}")

    # --- sharded vs single on the identical stream -------------------------
    with MnemonicEngine(query) as single:
        expected = run_engine(single, events)
    with ShardedEngine(query, config=EngineConfig(shards=NUM_SHARDS)) as sharded:
        actual = run_engine(sharded, events)
        shard_rows = sharded.shard_stats()
        frontier = sharded.frontier_stats()

    assert actual == expected, "sharded results diverged from the single engine"
    print(f"\nbit-identical across {NUM_SHARDS} shards: "
          f"{len(expected[0])} positive / {len(expected[1])} negative embeddings")

    # --- where the work went -----------------------------------------------
    print("\nper-shard split:")
    for row in shard_rows:
        print(f"   shard {row['shard']}: {row['owned_vertices']:3d} vertices, "
              f"{row['stored_edges']:3d} stored edges, "
              f"{row['mutations_applied']:3d} mutations, "
              f"{row['debi_bits_set']:4d} DEBI bits")
    print(f"\ncross-shard frontier: {frontier['frontier_forwards']} forwards, "
          f"{frontier['frontier_rows']} candidate rows, "
          f"{frontier['frontier_lookups']} point lookups")


if __name__ == "__main__":
    main()
