#!/usr/bin/env python
"""Durable state: survive a crash and pick up exactly where you left off.

A plain engine keeps everything — graph, DEBI candidate index, standing
queries — in process memory; a crash loses it all and the only remedy is
replaying the whole stream.  This example runs the same deployment
twice:

1. a **first process** attaches a ``StorageConfig`` to the engine, so
   every delivered batch is sealed into an append-only CRC-framed
   journal, checkpoints are cut periodically, and (with
   ``debi_hot_rows``) cold DEBI rows spill to mmap'd segment files.
   It then "crashes" mid-stream: the engine is abandoned without a
   clean shutdown — nothing is flushed, sealed or checkpointed on the
   way out;
2. a **second process** recovers with ``MnemonicService.open`` (which
   dispatches on the engine kind stored in the state directory),
   inspects ``recovery_info`` to find the last *sealed* epoch, and
   refeeds only the events the first process never delivered results
   for.

The union of results delivered before the crash and after recovery is
bit-identical to a run that never crashed — the same contract the
crash-recovery test suite (``tests/test_recovery.py``) proves at every
possible crash point.

Run with::

    python examples/restart_service.py
"""

import shutil
import tempfile
from pathlib import Path

from repro import (
    EngineConfig,
    MnemonicEngine,
    MnemonicService,
    QueryGraph,
    StorageConfig,
    StreamConfig,
    StreamEvent,
)

#: node labels of this example's schema
USER, HOST, SERVICE = 0, 1, 2
BATCH = 8


def build_query() -> QueryGraph:
    """The pattern: a USER logs into a HOST that then talks to a SERVICE."""
    return QueryGraph.from_edges(
        [(0, 1), (1, 2)], node_labels={0: USER, 1: HOST, 2: SERVICE}
    )


def build_traffic() -> list[StreamEvent]:
    """A morning of logins and flows; every 5th user completes the pattern."""
    events: list[StreamEvent] = []
    for user in range(40):
        host = 200 + user % 7
        events.append(StreamEvent.insert(user, host, timestamp=float(user),
                                         src_label=USER, dst_label=HOST))
        if user % 5 == 0:
            events.append(StreamEvent.insert(host, 300, timestamp=user + 0.5,
                                             src_label=HOST, dst_label=SERVICE))
    return events


def durable_config(directory: Path) -> EngineConfig:
    return EngineConfig(
        stream=StreamConfig(batch_size=BATCH),
        collect_embeddings=True,
        storage=StorageConfig(
            directory=directory,
            checkpoint_interval=2,  # checkpoint every 2 sealed epochs
            debi_hot_rows=16,       # tiny budget, to show spilling in action
            debi_segment_rows=16,
        ),
    )


def main() -> None:
    state_dir = Path(tempfile.mkdtemp(prefix="mnemonic-restart-")) / "q0"
    traffic = build_traffic()
    crash_after = len(traffic) // 2
    try:
        # ----- process #1: durable service, crashes mid-stream -------------
        print(f"process #1: journaling to {state_dir}")
        engine = MnemonicEngine(build_query(), config=durable_config(state_dir))
        service = MnemonicService(engine)
        service.submit(traffic[:crash_after])
        delivered = service.drain()
        matches_before = sum(r.num_positive for r in delivered)
        counters = engine.storage_counters()
        print(f"  delivered {len(delivered)} batches, {matches_before} matches")
        print(f"  sealed {counters['sealed_epochs']} epochs, "
              f"{counters['checkpoints_written']} checkpoints, "
              f"{counters['spilled_rows']} DEBI rows on the cold tier")
        print("  ...crash! (no clean shutdown)")
        engine.close()  # releases file handles only; seals nothing

        # ----- process #2: recover and resume -------------------------------
        print("process #2: recovering")
        service = MnemonicService.open(state_dir)
        info = service.engine.recovery_info
        print(f"  recovered from checkpoint seq {info['checkpoint_seq']}, "
              f"replayed {info['replayed_records']} journal records"
              + (f", corruption: {info['corruption']}" if info["corruption"]
                 else ", journal clean"))
        # The refeed contract: everything after the last sealed epoch was
        # never delivered — submit exactly those events again.
        resume_event = (info["last_sealed_number"] + 1) * BATCH
        print(f"  last sealed epoch {info['last_sealed_number']} -> "
              f"refeeding from event {resume_event}")
        service.submit(traffic[resume_event:])
        recovered = service.drain()
        matches_after = sum(r.num_positive for r in recovered)
        service.engine.close()

        # ----- parity: the crash was invisible ------------------------------
        with MnemonicEngine(build_query(),
                            config=EngineConfig(
                                stream=StreamConfig(batch_size=BATCH),
                                collect_embeddings=True)) as reference:
            uninterrupted = reference.run(list(traffic))
        total = matches_before + matches_after
        print(f"  crash+recover found {matches_before} + {matches_after} = "
              f"{total} matches; uninterrupted run: "
              f"{uninterrupted.total_positive}")
        assert total == uninterrupted.total_positive, "recovery parity violated!"
        print("recovery parity holds: the crash cost nothing but a restart")
    finally:
        shutil.rmtree(state_dir.parent, ignore_errors=True)


if __name__ == "__main__":
    main()
